/**
 * @file
 * flexcore-perf: host-throughput benchmark of the simulator itself.
 * Runs a fixed matrix — {baseline, UMC, DIFT, BC on the fabric} ×
 * {sha, basicmath} — and reports, per configuration, how fast the
 * *host* simulates: simulated cycles per host second and host MIPS
 * (simulated instructions per host second). The matrix is the one the
 * tracked BENCH_perf.json baseline was recorded with, so any run on
 * the same host is directly comparable against the checked-in
 * reference (see docs/performance.md).
 *
 *   flexcore-perf                        # full scale, best of 2 reps
 *   flexcore-perf --quick                # test scale, 1 rep (CI smoke)
 *   flexcore-perf --out BENCH_perf.json --reps 3
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include <sys/resource.h>

#include "common/cliopts.h"
#include "common/ioutil.h"
#include "common/log.h"
#include "common/outputspec.h"
#include "core/profile.h"
#include "extensions/registry.h"
#include "sim/sim_request.h"

using namespace flexcore;

namespace {

struct MatrixRow
{
    MonitorKind monitor;
    ImplMode mode;
    ExecMode exec = ExecMode::kInterp;
    bool sampled = false;   //!< SMARTS sampled timing (window/period)
    u32 cores = 1;          //!< multi-core rows use the shared fabric
};

/**
 * The measurement matrix is fixed — it is the one the tracked
 * BENCH_perf.json baseline was recorded with — but the row labels
 * derive from the registry's canonical names. The interp rows come
 * first (comparable with older baselines); the threaded rows measure
 * superblock dispatch on the same configs, and the sampled row
 * measures functional warming (its simulated cycle count is an
 * estimate, so only host throughput is meaningful there).
 */
constexpr MatrixRow kMatrix[] = {
    {MonitorKind::kNone, ImplMode::kBaseline},
    {MonitorKind::kUmc, ImplMode::kFlexFabric},
    {MonitorKind::kDift, ImplMode::kFlexFabric},
    {MonitorKind::kBc, ImplMode::kFlexFabric},
    {MonitorKind::kNone, ImplMode::kBaseline, ExecMode::kThreaded},
    {MonitorKind::kUmc, ImplMode::kFlexFabric, ExecMode::kThreaded},
    {MonitorKind::kDift, ImplMode::kFlexFabric, ExecMode::kThreaded},
    {MonitorKind::kBc, ImplMode::kFlexFabric, ExecMode::kThreaded},
    {MonitorKind::kDift, ImplMode::kFlexFabric, ExecMode::kInterp,
     /*sampled=*/true},
    // Multi-core host throughput: every simulated core multiplies the
    // per-host-second work, so these rows track how the refactored
    // tick loop scales with N (shared fabric, docs/multicore.md).
    {MonitorKind::kDift, ImplMode::kFlexFabric, ExecMode::kInterp,
     /*sampled=*/false, /*cores=*/2},
    {MonitorKind::kDift, ImplMode::kFlexFabric, ExecMode::kInterp,
     /*sampled=*/false, /*cores=*/4},
};

/** Sampled-row parameters: 10% detailed (window 2k of period 20k). */
constexpr u64 kSampleWindow = 2'000;
constexpr u64 kSamplePeriod = 20'000;

std::string
rowName(const MatrixRow &row)
{
    std::string name = row.mode == ImplMode::kBaseline
                           ? "baseline"
                           : std::string(monitorKindName(row.monitor));
    if (row.exec == ExecMode::kThreaded)
        name += "-threaded";
    if (row.sampled)
        name += "-sampled";
    if (row.cores > 1)
        name += "-" + std::to_string(row.cores) + "core";
    return name;
}

/**
 * Pre-overhaul reference throughput (cycles/sec), full scale, best of
 * 2, recorded on the CI reference host immediately before the µop
 * cache + fast-forward change landed. The acceptance bar for that
 * change was dift >= 1.5x this number. Quick-scale runs and different
 * hosts are NOT comparable; rerecord when the host changes.
 */
constexpr struct
{
    const char *name;
    double cycles_per_sec;
} kPreChangeReference[] = {
    {"baseline", 23214294.0},
    {"umc", 21865116.0},
    {"dift", 16194094.0},
    {"bc", 15735825.0},
};

struct RowResult
{
    std::string name;
    u64 cycles = 0;
    u64 instructions = 0;
    double host_seconds = 0;
    double cycles_per_sec = 0;
    double host_mips = 0;
    /** Process max-RSS high-water mark (KB) observed after this row.
     * Monotone across rows — the per-row delta is what grew it. */
    u64 max_rss_kb = 0;
};

u64
currentMaxRssKb()
{
    struct rusage usage = {};
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
    // Linux reports ru_maxrss in kilobytes already.
    return static_cast<u64>(usage.ru_maxrss);
}

}  // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    u32 reps = 0;
    std::string out_path = "BENCH_perf.json";
    bool no_json = false;

    cli::Parser parser("flexcore-perf",
                       "benchmark the simulator's host throughput");
    parser.flag("--quick", &quick,
                "test-scale workloads, 1 rep (smoke; numbers are not "
                "comparable with the tracked full-scale baseline)");
    parser.option("--reps", &reps, "N",
                  "repetitions per row, best wins (default: 2 full, "
                  "1 quick)");
    parser.option("--out", &out_path, "FILE",
                  "result JSON path (default BENCH_perf.json, "
                  "- = stdout)");
    parser.flag("--no-json", &no_json, "disable the JSON output");
    OutputSpec ospec;
    ospec.attach(&parser, kSpecFastForward | kSpecProfileFile |
                              kSpecListMonitors);
    parser.parseOrExit(argc, argv);

    if (ospec.handledListMonitors())
        return 0;
    const bool no_fast_forward = ospec.no_fast_forward;

    const WorkloadScale scale =
        quick ? WorkloadScale::kTest : WorkloadScale::kFull;
    if (reps == 0)
        reps = quick ? 1 : 2;
    const std::vector<Workload> programs = {makeSha(scale),
                                            makeBasicmath(scale)};

    std::printf("%-10s %12s %12s %9s %16s %10s %10s\n", "config",
                "cycles", "insts", "host_s", "cycles/sec", "host MIPS",
                "maxrss_kb");
    std::vector<RowResult> results;
    const auto wall_start = std::chrono::steady_clock::now();
    for (const MatrixRow &row : kMatrix) {
        RowResult r;
        r.name = rowName(row);
        for (u32 rep = 0; rep < reps; ++rep) {
            u64 cycles = 0;
            u64 insts = 0;
            const auto t0 = std::chrono::steady_clock::now();
            for (const Workload &w : programs) {
                SystemConfig config;
                config.monitor = row.monitor;
                config.mode = row.mode;
                config.exec_mode = row.exec;
                if (row.sampled) {
                    config.sample_window = kSampleWindow;
                    config.sample_period = kSamplePeriod;
                }
                if (row.cores > 1) {
                    config.num_cores = row.cores;
                    config.fabric_sharing = FabricSharing::kShared;
                }
                config.fast_forward = !no_fast_forward;
                const SimOutcome out =
                    SimRequest(std::move(config)).workload(w).run();
                cycles += out.result.cycles;
                insts += out.result.instructions;
            }
            const double sec =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            const double cps = static_cast<double>(cycles) / sec;
            if (cps > r.cycles_per_sec) {
                r.cycles = cycles;
                r.instructions = insts;
                r.host_seconds = sec;
                r.cycles_per_sec = cps;
                r.host_mips =
                    static_cast<double>(insts) / sec / 1e6;
            }
        }
        r.max_rss_kb = currentMaxRssKb();
        std::printf("%-10s %12llu %12llu %9.3f %16.0f %10.3f %10llu\n",
                    r.name.c_str(),
                    static_cast<unsigned long long>(r.cycles),
                    static_cast<unsigned long long>(r.instructions),
                    r.host_seconds, r.cycles_per_sec, r.host_mips,
                    static_cast<unsigned long long>(r.max_rss_kb));
        std::fflush(stdout);
        results.push_back(std::move(r));
    }
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    if (!quick) {
        std::printf("\nspeedup vs pre-overhaul reference (same-host "
                    "full-scale baseline):\n");
        for (const RowResult &r : results) {
            for (const auto &ref : kPreChangeReference) {
                if (r.name == ref.name) {
                    std::printf("  %-10s %5.2fx\n", r.name.c_str(),
                                r.cycles_per_sec / ref.cycles_per_sec);
                }
            }
        }
    }

    // The per-PC profile is captured in separate, untimed runs so the
    // timed matrix above never pays the attribution cost.
    if (!ospec.profile_json_path.empty()) {
        std::string profiles = "{";
        bool first = true;
        for (const MatrixRow &row : kMatrix) {
            if (row.sampled || row.cores > 1)
                continue;   // estimates / per-core tables; the profile
                            // map keeps its single-core shape
            for (const Workload &w : programs) {
                SystemConfig config;
                config.monitor = row.monitor;
                config.mode = row.mode;
                config.exec_mode = row.exec;
                config.fast_forward = !no_fast_forward;
                const SimOutcome out =
                    SimRequest(std::move(config))
                        .workload(w)
                        .profileJson(ospec.effectiveProfileTop())
                        .run();
                if (!first)
                    profiles += ", ";
                first = false;
                profiles += "\"" + rowName(row) + "/" + w.name + "\": ";
                profiles += out.profile_json;
            }
        }
        profiles += "}";
        writeTextOrStdout(ospec.profile_json_path, profiles);
    }

    if (no_json)
        return 0;
    std::string json;
    json += "{\n  \"bench\": \"perf\",\n  \"scale\": \"";
    json += quick ? "test" : "full";
    json += "\",\n  \"reps\": " + std::to_string(reps);
    char wall_buf[48];
    std::snprintf(wall_buf, sizeof(wall_buf),
                  ",\n  \"wall_seconds\": %.6f", wall_seconds);
    json += wall_buf;
    json += ",\n  \"reference\": [\n";
    for (size_t i = 0; i < std::size(kPreChangeReference); ++i) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "    {\"config\": \"%s\", \"cycles_per_sec\": "
                      "%.0f}%s\n",
                      kPreChangeReference[i].name,
                      kPreChangeReference[i].cycles_per_sec,
                      i + 1 < std::size(kPreChangeReference) ? "," : "");
        json += buf;
    }
    json += "  ],\n  \"results\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const RowResult &r = results[i];
        char buf[256];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"config\": \"%s\", \"cycles\": %llu, "
            "\"instructions\": %llu, \"host_seconds\": %.6f, "
            "\"cycles_per_sec\": %.0f, \"host_mips\": %.3f, "
            "\"max_rss_kb\": %llu}%s\n",
            r.name.c_str(), static_cast<unsigned long long>(r.cycles),
            static_cast<unsigned long long>(r.instructions),
            r.host_seconds, r.cycles_per_sec, r.host_mips,
            static_cast<unsigned long long>(r.max_rss_kb),
            i + 1 < results.size() ? "," : "");
        json += buf;
    }
    json += "  ]\n}\n";
    writeTextOrStdout(out_path, json);
    if (!isStdoutPath(out_path))
        std::fprintf(stderr, "[flexcore-perf] wrote %s\n",
                     out_path.c_str());
    return 0;
}
