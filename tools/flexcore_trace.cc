/**
 * @file
 * flexcore-trace: inspect streaming binary (FXTR) traces produced by
 * `flexcore-run --trace-out` (and the other tools' --trace-out flags).
 *
 *   flexcore-trace report trace.fxtr          # JSON summary to stdout
 *   flexcore-trace export --chrome trace.fxtr -o trace.json
 *   flexcore-trace diff a.fxtr b.fxtr         # first divergence
 *   flexcore-trace stats trace.fxtr           # histograms to stdout
 *
 * `report` aggregates the stream into a canonical JSON document:
 * record counts by type, the per-name event taxonomy (stall episodes
 * with total duration, instants, counters), commit hotspots (top PCs
 * by committed instructions), fault-injection marks, and sampling
 * windows. `export --chrome` replays the Chrome-phase records through
 * the buffering renderer, producing output byte-identical to what
 * `--trace-json` would have written for the same run (CI cmp-gates
 * this). `diff` decodes two streams side by side and prints the first
 * diverging record (exit 0 identical, 1 different, 2 usage/IO error).
 * `stats` renders log2-bucketed duration histograms per episode name
 * and counter value ranges.
 *
 * Subcommand parsing is hand-rolled: cli::Parser supports a single
 * positional, and diff needs two.
 */

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/ioutil.h"
#include "common/trace_stream.h"

using namespace flexcore;

namespace {

void
appendU64(std::string *out, u64 v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    *out += buf;
}

void
appendHexPc(std::string *out, u64 pc)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%08" PRIx64, pc);
    *out += buf;
}

/** Escape is unnecessary for our event names (identifiers), but keep
 * the JSON well-formed even if a future name carries specials. */
std::string
jsonString(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

struct EpisodeAgg
{
    u64 count = 0;
    u64 total_dur = 0;
    u64 max_dur = 0;
};

struct CounterAgg
{
    u64 count = 0;
    u64 min = ~u64{0};
    u64 max = 0;
    u64 last = 0;
};

struct StreamAgg
{
    std::map<std::string, u64> record_counts;   //!< by type name
    std::map<std::string, EpisodeAgg> episodes; //!< kComplete by name
    std::map<std::string, u64> instants;        //!< kInstant by name
    std::map<std::string, CounterAgg> counters; //!< kCounter by name
    std::map<u64, u64> commits_by_pc;
    u64 commits = 0;
    u64 first_commit_cycle = 0;
    u64 last_commit_cycle = 0;
    u64 fault_marks = 0;
    u64 windows_detailed = 0;
    u64 windows_warm = 0;
    u64 last_ts = 0;
    bool has_summary = false;
    u64 summary_records = 0;
    u64 summary_commits = 0;
    u64 summary_last_ts = 0;
    /** Per-episode-name log2 duration histogram (stats subcommand). */
    std::map<std::string, std::map<unsigned, u64>> dur_hist;
};

unsigned
log2Bucket(u64 v)
{
    unsigned b = 0;
    while (v > 1) {
        v >>= 1;
        ++b;
    }
    return b;
}

const char *
recordTypeName(TraceRecordType t)
{
    switch (t) {
      case TraceRecordType::kString: return "string";
      case TraceRecordType::kCounter: return "counter";
      case TraceRecordType::kComplete: return "complete";
      case TraceRecordType::kInstant: return "instant";
      case TraceRecordType::kCommit: return "commit";
      case TraceRecordType::kFaultMark: return "fault_mark";
      case TraceRecordType::kWindow: return "window";
      case TraceRecordType::kSummary: return "summary";
    }
    return "unknown";
}

bool
aggregate(const std::string &path, StreamAgg *agg, std::string *error)
{
    TraceReader reader(path);
    if (!reader.valid()) {
        *error = reader.error();
        return false;
    }
    TraceRecord r;
    while (reader.next(&r)) {
        ++agg->record_counts[recordTypeName(r.type)];
        switch (r.type) {
          case TraceRecordType::kCounter: {
            CounterAgg &c = agg->counters[r.name];
            ++c.count;
            c.min = std::min(c.min, r.a);
            c.max = std::max(c.max, r.a);
            c.last = r.a;
            agg->last_ts = std::max(agg->last_ts, r.ts);
            break;
          }
          case TraceRecordType::kComplete: {
            EpisodeAgg &e = agg->episodes[r.name];
            ++e.count;
            e.total_dur += r.a;
            e.max_dur = std::max(e.max_dur, r.a);
            ++agg->dur_hist[r.name][log2Bucket(r.a)];
            agg->last_ts = std::max(agg->last_ts, r.ts + r.a);
            break;
          }
          case TraceRecordType::kInstant:
            ++agg->instants[r.name];
            agg->last_ts = std::max(agg->last_ts, r.ts);
            break;
          case TraceRecordType::kCommit:
            if (agg->commits == 0)
                agg->first_commit_cycle = r.ts;
            ++agg->commits;
            agg->last_commit_cycle = r.ts;
            ++agg->commits_by_pc[r.a];
            agg->last_ts = std::max(agg->last_ts, r.ts);
            break;
          case TraceRecordType::kFaultMark:
            ++agg->fault_marks;
            agg->last_ts = std::max(agg->last_ts, r.ts);
            break;
          case TraceRecordType::kWindow:
            if (r.b)
                ++agg->windows_detailed;
            else
                ++agg->windows_warm;
            break;
          case TraceRecordType::kSummary:
            agg->has_summary = true;
            agg->summary_records = r.a;
            agg->summary_commits = r.b;
            agg->summary_last_ts = r.c;
            break;
          case TraceRecordType::kString:
            break;  // consumed by the reader, never surfaced
        }
    }
    if (!reader.valid()) {
        *error = reader.error();
        return false;
    }
    return true;
}

int
cmdReport(const std::string &path, u32 top_n, const std::string &out_path)
{
    StreamAgg agg;
    std::string error;
    if (!aggregate(path, &agg, &error)) {
        std::fprintf(stderr, "flexcore-trace: %s: %s\n", path.c_str(),
                     error.c_str());
        return 2;
    }

    std::string out;
    out.reserve(1024);
    out += "{\"commits\": {\"count\": ";
    appendU64(&out, agg.commits);
    out += ", \"first_cycle\": ";
    appendU64(&out, agg.first_commit_cycle);
    out += ", \"last_cycle\": ";
    appendU64(&out, agg.last_commit_cycle);
    out += ", \"top_pcs\": [";
    {
        std::vector<std::pair<u64, u64>> rows;   // (count, pc)
        rows.reserve(agg.commits_by_pc.size());
        for (const auto &[pc, n] : agg.commits_by_pc)
            rows.emplace_back(n, pc);
        std::sort(rows.begin(), rows.end(), [](const auto &a,
                                               const auto &b) {
            if (a.first != b.first)
                return a.first > b.first;
            return a.second < b.second;
        });
        if (rows.size() > top_n)
            rows.resize(top_n);
        for (size_t i = 0; i < rows.size(); ++i) {
            if (i)
                out += ", ";
            out += "{\"count\": ";
            appendU64(&out, rows[i].first);
            out += ", \"pc\": \"";
            appendHexPc(&out, rows[i].second);
            out += "\"}";
        }
    }
    out += "], \"unique_pcs\": ";
    appendU64(&out, agg.commits_by_pc.size());
    out += "}, \"counters\": {";
    {
        bool first = true;
        for (const auto &[name, c] : agg.counters) {
            if (!first)
                out += ", ";
            first = false;
            out += jsonString(name);
            out += ": {\"count\": ";
            appendU64(&out, c.count);
            out += ", \"last\": ";
            appendU64(&out, c.last);
            out += ", \"max\": ";
            appendU64(&out, c.max);
            out += ", \"min\": ";
            appendU64(&out, c.count ? c.min : 0);
            out += '}';
        }
    }
    out += "}, \"episodes\": {";
    {
        bool first = true;
        for (const auto &[name, e] : agg.episodes) {
            if (!first)
                out += ", ";
            first = false;
            out += jsonString(name);
            out += ": {\"count\": ";
            appendU64(&out, e.count);
            out += ", \"max_cycles\": ";
            appendU64(&out, e.max_dur);
            out += ", \"total_cycles\": ";
            appendU64(&out, e.total_dur);
            out += '}';
        }
    }
    out += "}, \"fault_marks\": ";
    appendU64(&out, agg.fault_marks);
    out += ", \"instants\": {";
    {
        bool first = true;
        for (const auto &[name, n] : agg.instants) {
            if (!first)
                out += ", ";
            first = false;
            out += jsonString(name);
            out += ": ";
            appendU64(&out, n);
        }
    }
    out += "}, \"last_ts\": ";
    appendU64(&out, agg.last_ts);
    out += ", \"records\": {";
    {
        bool first = true;
        for (const auto &[name, n] : agg.record_counts) {
            if (!first)
                out += ", ";
            first = false;
            out += jsonString(name);
            out += ": ";
            appendU64(&out, n);
        }
    }
    out += "}, \"summary\": ";
    if (agg.has_summary) {
        out += "{\"commits\": ";
        appendU64(&out, agg.summary_commits);
        out += ", \"last_ts\": ";
        appendU64(&out, agg.summary_last_ts);
        out += ", \"records\": ";
        appendU64(&out, agg.summary_records);
        out += '}';
    } else {
        out += "null";
    }
    out += ", \"windows\": {\"detailed\": ";
    appendU64(&out, agg.windows_detailed);
    out += ", \"warm\": ";
    appendU64(&out, agg.windows_warm);
    out += "}}";

    writeTextOrStdout(out_path, out);
    return 0;
}

int
cmdStats(const std::string &path, const std::string &out_path)
{
    StreamAgg agg;
    std::string error;
    if (!aggregate(path, &agg, &error)) {
        std::fprintf(stderr, "flexcore-trace: %s: %s\n", path.c_str(),
                     error.c_str());
        return 2;
    }

    // Duration histograms: per episode name, counts of episodes whose
    // duration falls in [2^k, 2^(k+1)) cycles (bucket 0 is 0-1).
    std::string out;
    out.reserve(512);
    out += "{\"duration_log2_histograms\": {";
    bool first = true;
    for (const auto &[name, hist] : agg.dur_hist) {
        if (!first)
            out += ", ";
        first = false;
        out += jsonString(name);
        out += ": {";
        bool first_bucket = true;
        for (const auto &[bucket, n] : hist) {
            if (!first_bucket)
                out += ", ";
            first_bucket = false;
            out += '"';
            appendU64(&out, u64{1} << bucket);
            out += "\": ";
            appendU64(&out, n);
        }
        out += '}';
    }
    out += "}, \"commit_gap_note\": \"gaps between commit cycles "
           "include stall episodes; see report episodes\", "
           "\"episode_means\": {";
    first = true;
    for (const auto &[name, e] : agg.episodes) {
        if (!first)
            out += ", ";
        first = false;
        out += jsonString(name);
        out += ": ";
        appendU64(&out, e.count ? e.total_dur / e.count : 0);
    }
    out += "}}";

    writeTextOrStdout(out_path, out);
    return 0;
}

int
cmdExport(const std::string &path, const std::string &out_path)
{
    std::string json, error;
    if (!renderChromeJson(path, &json, &error)) {
        std::fprintf(stderr, "flexcore-trace: %s: %s\n", path.c_str(),
                     error.c_str());
        return 2;
    }
    // The Chrome renderer's output already ends in a newline and must
    // stay byte-identical to --trace-json, so bypass the trailing-
    // newline normalization for the file case.
    if (isStdoutPath(out_path)) {
        std::fwrite(json.data(), 1, json.size(), stdout);
        std::fflush(stdout);
        return 0;
    }
    std::FILE *out = std::fopen(out_path.c_str(), "wb");
    if (!out) {
        std::fprintf(stderr, "flexcore-trace: cannot open %s\n",
                     out_path.c_str());
        return 2;
    }
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    return 0;
}

int
cmdDiff(const std::string &path_a, const std::string &path_b)
{
    const TraceDiff diff = diffStreams(path_a, path_b);
    if (diff.identical) {
        std::printf("identical\n");
        return 0;
    }
    std::printf("streams diverge at record %" PRIu64 "\n", diff.index);
    std::printf("  a (%s): %s\n", path_a.c_str(), diff.a_desc.c_str());
    std::printf("  b (%s): %s\n", path_b.c_str(), diff.b_desc.c_str());
    return 1;
}

int
usage(FILE *to)
{
    std::fputs(
        "usage: flexcore-trace <subcommand> [args]\n"
        "\n"
        "  report FILE [--top N] [-o OUT]   aggregate summary (canonical\n"
        "                                   JSON; default stdout)\n"
        "  export --chrome FILE [-o OUT]    render Chrome trace-event\n"
        "                                   JSON, byte-identical to what\n"
        "                                   --trace-json writes for the\n"
        "                                   same run (default stdout)\n"
        "  diff A B                         first diverging record\n"
        "                                   (exit 0 identical, 1 differ)\n"
        "  stats FILE [-o OUT]              duration histograms\n"
        "\n"
        "FILE is a binary FXTR stream from --trace-out; a FILE of -\n"
        "reads the stream from stdin (so `flexcore-run --trace-out - |\n"
        "flexcore-trace report -` needs no temp file). OUT of - means\n"
        "stdout (the default).\n",
        to);
    return to == stdout ? 0 : 2;
}

}  // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty())
        return usage(stderr);
    const std::string cmd = args[0];
    if (cmd == "-h" || cmd == "--help" || cmd == "help")
        return usage(stdout);

    std::string out_path = "-";
    u32 top_n = 10;
    bool chrome = false;
    std::vector<std::string> positional;
    for (size_t i = 1; i < args.size(); ++i) {
        const std::string &a = args[i];
        if (a == "-o" || a == "--out") {
            if (++i == args.size()) {
                std::fprintf(stderr, "%s needs a value\n", a.c_str());
                return 2;
            }
            out_path = args[i];
        } else if (a == "--top") {
            if (++i == args.size()) {
                std::fprintf(stderr, "--top needs a value\n");
                return 2;
            }
            top_n = static_cast<u32>(std::strtoul(args[i].c_str(),
                                                  nullptr, 0));
        } else if (a == "--chrome") {
            chrome = true;
        } else if (a == "-h" || a == "--help") {
            return usage(stdout);
        } else if (!a.empty() && a[0] == '-' && a != "-") {
            std::fprintf(stderr, "unknown option %s\n", a.c_str());
            return usage(stderr);
        } else {
            positional.push_back(a);
        }
    }

    if (cmd == "report" && positional.size() == 1)
        return cmdReport(positional[0], top_n, out_path);
    if (cmd == "stats" && positional.size() == 1)
        return cmdStats(positional[0], out_path);
    if (cmd == "export" && positional.size() == 1) {
        if (!chrome) {
            std::fprintf(stderr, "export needs a format flag "
                                 "(--chrome)\n");
            return 2;
        }
        return cmdExport(positional[0], out_path);
    }
    if (cmd == "diff" && positional.size() == 2)
        return cmdDiff(positional[0], positional[1]);

    std::fprintf(stderr, "bad arguments for '%s'\n", cmd.c_str());
    return usage(stderr);
}
