/**
 * @file
 * flexcore-run: assemble a SPARC-subset .s file and execute it on the
 * simulated system, optionally with a monitoring extension.
 *
 *   flexcore-run prog.s                         # baseline Leon3
 *   flexcore-run --monitor dift prog.s          # DIFT on the fabric
 *   flexcore-run --monitor bc --mode asic prog.s
 *   flexcore-run --monitor sec --fault-rate 1e-5 prog.s
 *   flexcore-run --monitor umc --stats --trace prog.s
 *   flexcore-run --monitor dift --stats-json s.json \
 *                --trace-json t.json prog.s
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "assembler/assembler.h"
#include "common/log.h"
#include "isa/disasm.h"
#include "sim/system.h"

using namespace flexcore;

namespace {

void
usage()
{
    std::fprintf(stderr,
                 "usage: flexcore-run [options] program.s\n"
                 "  --monitor none|umc|dift|bc|sec   extension "
                 "(default none)\n"
                 "  --mode baseline|asic|flexcore|software\n"
                 "  --period N        fabric clock divisor "
                 "(default: per-extension)\n"
                 "  --fifo N          forward FIFO depth (default 64)\n"
                 "  --mcache BYTES    meta-data cache size "
                 "(default 4096)\n"
                 "  --dift-bits N     DIFT taint width (1 or 4)\n"
                 "  --precise         precise monitor exceptions\n"
                 "  --fault-rate P    ALU transient-fault probability\n"
                 "  --max-cycles N    simulation cycle limit\n"
                 "  --stats           dump the statistics tree\n"
                 "  --stats-json F    write the statistics tree to F as "
                 "canonical JSON\n"
                 "  --trace           print every committed instruction\n"
                 "  --trace-json F    write a Chrome trace-event file "
                 "to F (open in\n"
                 "                    Perfetto or chrome://tracing)\n"
                 "  --quiet           suppress the run summary\n"
                 "\n"
                 "Streams: the simulated program's console output goes "
                 "to stdout\n"
                 "(flushed first); the run summary, --stats dump, and "
                 "--trace\n"
                 "disassembly go to stderr, so stdout stays clean for "
                 "piping.\n");
}

bool
parseMonitor(const std::string &name, MonitorKind *kind)
{
    if (name == "none") *kind = MonitorKind::kNone;
    else if (name == "umc") *kind = MonitorKind::kUmc;
    else if (name == "dift") *kind = MonitorKind::kDift;
    else if (name == "bc") *kind = MonitorKind::kBc;
    else if (name == "sec") *kind = MonitorKind::kSec;
    else return false;
    return true;
}

bool
parseMode(const std::string &name, ImplMode *mode)
{
    if (name == "baseline") *mode = ImplMode::kBaseline;
    else if (name == "asic") *mode = ImplMode::kAsic;
    else if (name == "flexcore") *mode = ImplMode::kFlexFabric;
    else if (name == "software") *mode = ImplMode::kSoftware;
    else return false;
    return true;
}

}  // namespace

int
main(int argc, char **argv)
{
    SystemConfig config;
    bool mode_given = false;
    bool dump_stats = false;
    bool trace = false;
    bool quiet = false;
    std::string path;
    std::string stats_json_path;
    std::string trace_json_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--monitor") {
            if (!parseMonitor(next(), &config.monitor)) {
                usage();
                return 2;
            }
        } else if (arg == "--mode") {
            if (!parseMode(next(), &config.mode)) {
                usage();
                return 2;
            }
            mode_given = true;
        } else if (arg == "--period") {
            config.flex_period = std::strtoul(next(), nullptr, 0);
        } else if (arg == "--fifo") {
            config.iface.fifo_depth = std::strtoul(next(), nullptr, 0);
        } else if (arg == "--mcache") {
            config.fabric.meta_cache.size_bytes =
                std::strtoul(next(), nullptr, 0);
        } else if (arg == "--dift-bits") {
            config.dift_tag_bits = std::strtoul(next(), nullptr, 0);
        } else if (arg == "--precise") {
            config.precise_exceptions = true;
        } else if (arg == "--fault-rate") {
            config.fault_rate = std::strtod(next(), nullptr);
        } else if (arg == "--max-cycles") {
            config.max_cycles = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--stats-json") {
            stats_json_path = next();
        } else if (arg == "--trace") {
            trace = true;
        } else if (arg == "--trace-json") {
            trace_json_path = next();
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage();
            return 2;
        } else {
            path = arg;
        }
    }
    if (path.empty()) {
        usage();
        return 2;
    }
    if (config.monitor != MonitorKind::kNone && !mode_given)
        config.mode = ImplMode::kFlexFabric;

    std::ifstream file(path);
    if (!file) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 2;
    }
    std::stringstream source;
    source << file.rdbuf();

    Assembler assembler;
    Program program;
    if (!assembler.assemble(source.str(), &program)) {
        std::fprintf(stderr, "%s: assembly failed\n%s", path.c_str(),
                     assembler.errorText().c_str());
        return 1;
    }

    // Observability output implies histogram sampling: the JSON should
    // carry populated occupancy/queue-depth distributions.
    if (!stats_json_path.empty() || !trace_json_path.empty())
        config.histograms = true;

    System system(config);
    system.load(program);
    TraceSink sink;
    if (!trace_json_path.empty())
        system.attachTrace(&sink);
    if (trace) {
        system.core().setTracer(
            [](Cycle cycle, Addr pc, const Instruction &inst) {
                std::fprintf(stderr, "%10llu  0x%08x  %s\n",
                             static_cast<unsigned long long>(cycle), pc,
                             disassemble(inst, pc).c_str());
            });
    }
    const RunResult result = system.run();

    std::fputs(result.console.c_str(), stdout);
    // Flush the program's console before any stderr reporting so the
    // two streams interleave sensibly when merged (e.g. under 2>&1).
    std::fflush(stdout);
    if (!quiet) {
        std::fprintf(stderr,
                     "[flexcore-run] %s: %s after %llu cycles, %llu "
                     "instructions",
                     path.c_str(),
                     std::string(exitName(result.exit)).c_str(),
                     static_cast<unsigned long long>(result.cycles),
                     static_cast<unsigned long long>(
                         result.instructions));
        if (result.exit == RunResult::Exit::kExited)
            std::fprintf(stderr, ", exit code %u", result.exit_code);
        if (result.exit == RunResult::Exit::kMonitorTrap)
            std::fprintf(stderr, " (%s at pc=0x%x)",
                         result.trap_reason.c_str(), result.trap.pc);
        if (result.exit == RunResult::Exit::kCoreTrap)
            std::fprintf(stderr, " (%s: %s at pc=0x%x)",
                         std::string(trapKindName(result.trap.kind))
                             .c_str(),
                         result.trap.detail.c_str(), result.trap.pc);
        std::fprintf(stderr, "\n");
    }
    if (dump_stats)
        std::fputs(system.stats().dump().c_str(), stderr);
    if (!stats_json_path.empty()) {
        std::FILE *out = std::fopen(stats_json_path.c_str(), "w");
        if (!out) {
            std::fprintf(stderr, "cannot open %s\n",
                         stats_json_path.c_str());
            return 2;
        }
        const std::string json = system.stats().json();
        std::fwrite(json.data(), 1, json.size(), out);
        std::fclose(out);
    }
    if (!trace_json_path.empty())
        sink.write(trace_json_path);

    switch (result.exit) {
      case RunResult::Exit::kExited:
        return static_cast<int>(result.exit_code & 0x7f);
      case RunResult::Exit::kMonitorTrap:
        return 125;
      case RunResult::Exit::kCoreTrap:
        return 126;
      case RunResult::Exit::kMaxCycles:
        return 124;
    }
    return 1;
}
