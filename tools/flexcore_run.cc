/**
 * @file
 * flexcore-run: assemble a SPARC-subset .s file and execute it on the
 * simulated system, optionally with a monitoring extension.
 *
 *   flexcore-run prog.s                         # baseline Leon3
 *   flexcore-run --monitor dift prog.s          # DIFT on the fabric
 *   flexcore-run --monitor bc --mode asic prog.s
 *   flexcore-run --monitor sec --fault-rate 1e-5 prog.s
 *   flexcore-run --monitor umc --stats --trace prog.s
 *   flexcore-run --monitor dift --stats-json s.json \
 *                --trace-json t.json prog.s
 */

#include <cstdio>
#include <optional>
#include <string>

#include "assembler/assembler.h"
#include "common/cliopts.h"
#include "common/ioutil.h"
#include "common/outputspec.h"
#include "common/trace_stream.h"
#include "core/profile.h"
#include "extensions/registry.h"
#include "isa/disasm.h"
#include "sim/sim_request.h"

using namespace flexcore;

int
main(int argc, char **argv)
{
    SystemConfig config;
    bool mode_given = false;
    bool dump_stats = false;
    bool trace = false;
    bool quiet = false;
    std::string monitor_name;
    std::string path;
    OutputSpec spec;

    cli::Parser parser("flexcore-run",
                       "assemble and run a SPARC-subset program");
    parser.option("--monitor", &monitor_name, "NAME",
                  "monitoring extension: none, " + knownMonitorNames() +
                      " (aliases accepted; default none)");
    parser.choice("--mode", {"baseline", "asic", "flexcore", "software"},
                  [&](size_t i) {
                      static const ImplMode modes[] = {
                          ImplMode::kBaseline, ImplMode::kAsic,
                          ImplMode::kFlexFabric, ImplMode::kSoftware};
                      config.mode = modes[i];
                      mode_given = true;
                  },
                  "implementation mode (default flexcore when a "
                  "monitor is set)");
    parser.option("--period", &config.flex_period, "N",
                  "fabric clock divisor (default: per-extension)");
    parser.option("--fifo", &config.iface.fifo_depth, "N",
                  "forward FIFO depth (default 64)");
    parser.option("--mcache", &config.fabric.meta_cache.size_bytes,
                  "BYTES", "meta-data cache size (default 4096)");
    parser.option("--dift-bits", &config.dift_tag_bits, "N",
                  "DIFT taint width (1 or 4)");
    parser.flag("--precise", &config.precise_exceptions,
                "precise monitor exceptions");
    parser.option("--fault-rate", &config.fault_rate, "P",
                  "ALU transient-fault probability");
    parser.flag("--stats", &dump_stats, "dump the statistics tree");
    parser.flag("--trace", &trace, "print every committed instruction");
    parser.flag("--quiet", &quiet, "suppress the run summary");
    spec.attach(&parser,
                kSpecExecMode | kSpecSampling | kSpecFaults |
                    kSpecWatchdog | kSpecMaxCycles | kSpecStatsJson |
                    kSpecProfileFile | kSpecTrace | kSpecFastForward |
                    kSpecHistograms | kSpecListMonitors | kSpecCores);
    parser.positional("program.s", &path, /*required=*/false);
    parser.footer(
        "Streams: the simulated program's console output goes to stdout\n"
        "(flushed first); the run summary, --stats dump, and --trace\n"
        "disassembly go to stderr, so stdout stays clean for piping.\n"
        "With --stats-json - or --profile-json -, that JSON document\n"
        "claims stdout and the program console moves to stderr.\n"
        "program.s of - reads the program from stdin.\n");
    parser.parseOrExit(argc, argv);

    if (spec.handledListMonitors())
        return 0;
    if (path.empty()) {
        std::fprintf(stderr, "missing program.s\n%s\n",
                     parser.usageLine().c_str());
        return 2;
    }
    if (!monitor_name.empty() &&
        !parseMonitorKind(monitor_name, &config.monitor)) {
        std::fprintf(stderr,
                     "unknown monitor '%s' (known: none, %s; see "
                     "--list-monitors)\n",
                     monitor_name.c_str(), knownMonitorNames().c_str());
        return 2;
    }

    if (config.monitor != MonitorKind::kNone && !mode_given)
        config.mode = ImplMode::kFlexFabric;
    if (!spec.apply(&config, "flexcore-run"))
        return 2;

    std::string source;
    if (!readTextOrStdin(path, &source)) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 2;
    }

    Assembler assembler;
    Program program;
    if (!assembler.assemble(source, &program)) {
        std::fprintf(stderr, "%s: assembly failed\n%s", path.c_str(),
                     assembler.errorText().c_str());
        return 1;
    }

    SimRequest request(config);
    request.program(std::move(program));
    TraceBuffer sink;
    std::optional<TraceStreamWriter> stream;
    spec.configureRequest(&request, &sink, &stream);
    if (trace) {
        request.tracer(
            [](Cycle cycle, Addr pc, const Instruction &inst) {
                std::fprintf(stderr, "%10llu  0x%08x  %s\n",
                             static_cast<unsigned long long>(cycle), pc,
                             disassemble(inst, pc).c_str());
            });
    }
    if (dump_stats)
        request.statsDump();
    const SimOutcome outcome = request.run();
    const RunResult &result = outcome.result;

    // When a JSON report claims stdout (--stats-json - / --profile-json
    // -), the simulated console moves to stderr so stdout stays a
    // single machine-readable document for piping.
    const bool json_on_stdout = spec.jsonOnStdout();
    std::fputs(result.console.c_str(),
               json_on_stdout ? stderr : stdout);
    // Flush the program's console before any stderr reporting so the
    // two streams interleave sensibly when merged (e.g. under 2>&1).
    std::fflush(json_on_stdout ? stderr : stdout);
    if (!quiet) {
        std::fprintf(stderr,
                     "[flexcore-run] %s: %s after %llu cycles, %llu "
                     "instructions",
                     path.c_str(),
                     std::string(exitName(result.exit)).c_str(),
                     static_cast<unsigned long long>(result.cycles),
                     static_cast<unsigned long long>(
                         result.instructions));
        if (result.exit == RunResult::Exit::kExited)
            std::fprintf(stderr, ", exit code %u", result.exit_code);
        if (result.exit == RunResult::Exit::kMonitorTrap)
            std::fprintf(stderr, " (%s at pc=0x%x)",
                         result.trap_reason.c_str(), result.trap.pc);
        if (result.exit == RunResult::Exit::kCoreTrap)
            std::fprintf(stderr, " (%s: %s at pc=0x%x)",
                         std::string(trapKindName(result.trap.kind))
                             .c_str(),
                         result.trap.detail.c_str(), result.trap.pc);
        if (result.exit == RunResult::Exit::kHang ||
            result.exit == RunResult::Exit::kDeadline)
            std::fprintf(stderr, " (%s)", result.trap_reason.c_str());
        if (result.sampled) {
            std::fprintf(
                stderr,
                " [sampled: estimate from %llu detailed cycles / %llu "
                "detailed instructions]",
                static_cast<unsigned long long>(result.detailed_cycles),
                static_cast<unsigned long long>(
                    result.detailed_instructions));
        }
        std::fprintf(stderr, "\n");
        if ((result.exit == RunResult::Exit::kMonitorTrap ||
             result.exit == RunResult::Exit::kCoreTrap) &&
            result.trap_inst != 0) {
            std::fprintf(
                stderr, "[flexcore-run]   offending instruction: %s\n",
                disassemble(result.trap_inst, result.trap.pc).c_str());
        }
        if (!config.faults.empty()) {
            const FaultReport &fault = outcome.fault;
            std::fprintf(
                stderr,
                "[flexcore-run] fault outcome: %s (%llu applied, %llu "
                "skipped)",
                std::string(faultOutcomeName(fault.outcome)).c_str(),
                static_cast<unsigned long long>(fault.applied),
                static_cast<unsigned long long>(fault.skipped));
            if (fault.outcome == FaultOutcome::kDetected)
                std::fprintf(stderr, ", detection latency %lld cycles",
                             static_cast<long long>(
                                 fault.detection_latency));
            std::fprintf(stderr, "\n");
            if (!outcome.golden_diff.empty())
                std::fprintf(stderr, "[flexcore-run]   %s\n",
                             outcome.golden_diff.c_str());
        }
    }
    if (dump_stats)
        std::fputs(outcome.stats_text.c_str(), stderr);
    spec.writeOutputs(outcome, &sink);
    if (stream)
        stream->finish();

    switch (result.exit) {
      case RunResult::Exit::kExited:
        return static_cast<int>(result.exit_code & 0x7f);
      case RunResult::Exit::kMonitorTrap:
        return 125;
      case RunResult::Exit::kCoreTrap:
        return 126;
      case RunResult::Exit::kMaxCycles:
        return 124;
      case RunResult::Exit::kHang:
        return 123;
      case RunResult::Exit::kDeadline:
        return 122;
    }
    return 1;
}
