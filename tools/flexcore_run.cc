/**
 * @file
 * flexcore-run: assemble a SPARC-subset .s file and execute it on the
 * simulated system, optionally with a monitoring extension.
 *
 *   flexcore-run prog.s                         # baseline Leon3
 *   flexcore-run --monitor dift prog.s          # DIFT on the fabric
 *   flexcore-run --monitor bc --mode asic prog.s
 *   flexcore-run --monitor sec --fault-rate 1e-5 prog.s
 *   flexcore-run --monitor umc --stats --trace prog.s
 *   flexcore-run --monitor dift --stats-json s.json \
 *                --trace-json t.json prog.s
 */

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "assembler/assembler.h"
#include "common/cliopts.h"
#include "common/ioutil.h"
#include "common/trace_stream.h"
#include "core/profile.h"
#include "extensions/registry.h"
#include "faults/fault_plan.h"
#include "isa/disasm.h"
#include "sim/sim_request.h"

using namespace flexcore;

int
main(int argc, char **argv)
{
    SystemConfig config;
    bool mode_given = false;
    bool dump_stats = false;
    bool trace = false;
    bool quiet = false;
    bool no_fast_forward = false;
    bool no_histograms = false;
    bool list_monitors = false;
    std::string monitor_name;
    std::string exec_mode_name;
    std::string path;
    std::string stats_json_path;
    std::string trace_json_path;
    std::string trace_out_path;
    std::string profile_json_path;
    u32 profile_top = 10;
    std::vector<std::string> inject_specs;
    std::string fault_plan_path;

    cli::Parser parser("flexcore-run",
                       "assemble and run a SPARC-subset program");
    parser.option("--monitor", &monitor_name, "NAME",
                  "monitoring extension: none, " + knownMonitorNames() +
                      " (aliases accepted; default none)");
    parser.flag("--list-monitors", &list_monitors,
                "list every registered monitoring extension and exit");
    parser.choice("--mode", {"baseline", "asic", "flexcore", "software"},
                  [&](size_t i) {
                      static const ImplMode modes[] = {
                          ImplMode::kBaseline, ImplMode::kAsic,
                          ImplMode::kFlexFabric, ImplMode::kSoftware};
                      config.mode = modes[i];
                      mode_given = true;
                  },
                  "implementation mode (default flexcore when a "
                  "monitor is set)");
    parser.option("--period", &config.flex_period, "N",
                  "fabric clock divisor (default: per-extension)");
    parser.option("--fifo", &config.iface.fifo_depth, "N",
                  "forward FIFO depth (default 64)");
    parser.option("--mcache", &config.fabric.meta_cache.size_bytes,
                  "BYTES", "meta-data cache size (default 4096)");
    parser.option("--dift-bits", &config.dift_tag_bits, "N",
                  "DIFT taint width (1 or 4)");
    parser.flag("--precise", &config.precise_exceptions,
                "precise monitor exceptions");
    parser.option("--exec-mode", &exec_mode_name, "MODE",
                  "execution engine: interp (golden, default) or "
                  "threaded (function-pointer superblock dispatch; "
                  "identical results, faster)");
    parser.option("--sample-window", &config.sample_window, "N",
                  "sampled timing: detailed instructions per sampling "
                  "unit (requires --sample-period)");
    parser.option("--sample-period", &config.sample_period, "N",
                  "sampled timing: instructions per sampling unit; the "
                  "first --sample-window of each run in full detail, "
                  "the rest functionally warmed (cycles become a "
                  "CPI-extrapolated estimate)");
    parser.option("--fault-rate", &config.fault_rate, "P",
                  "ALU transient-fault probability");
    parser.option("--max-cycles", &config.max_cycles, "N",
                  "simulation cycle limit");
    parser.option("--watchdog-commits", &config.watchdog_commits, "N",
                  "end the run as a hang after N consecutive cycles "
                  "without a commit (0 = off)");
    parser.list("--inject", &inject_specs, "SPEC",
                "schedule one fault, e.g. reg@i1200:t17:b3 or "
                "mem@c5000:t0x2040:b5 or ffifo@c900:t2:b12:fsrcv1; "
                "repeatable");
    parser.option("--fault-plan", &fault_plan_path, "FILE",
                  "load a fault plan (JSON document or compact specs, "
                  "see docs/fault_injection.md)");
    parser.flag("--stats", &dump_stats, "dump the statistics tree");
    parser.option("--stats-json", &stats_json_path, "FILE",
                  "write the statistics tree to FILE as canonical JSON "
                  "(- = stdout)");
    parser.option("--profile-json", &profile_json_path, "FILE",
                  "write the per-PC cycle-attribution hotspot report to "
                  "FILE as canonical JSON (- = stdout)");
    parser.option("--profile-top", &profile_top, "N",
                  "PCs per bucket in the --profile-json top lists "
                  "(default 10)");
    parser.flag("--trace", &trace, "print every committed instruction");
    parser.option("--trace-json", &trace_json_path, "FILE",
                  "write a Chrome trace-event file to FILE (open in "
                  "Perfetto or chrome://tracing)");
    parser.option("--trace-out", &trace_out_path, "FILE",
                  "stream a binary FXTR trace to FILE (O(1) memory; "
                  "inspect with flexcore-trace)");
    parser.flag("--no-fast-forward", &no_fast_forward,
                "disable quiescent-stretch fast-forwarding (results are "
                "identical either way; this exists to prove it)");
    parser.flag("--no-histograms", &no_histograms,
                "suppress the histogram sampling that --stats-json "
                "normally implies (for byte-comparing stats against an "
                "--exec-mode threaded run, which cannot sample)");
    parser.flag("--quiet", &quiet, "suppress the run summary");
    parser.positional("program.s", &path, /*required=*/false);
    parser.footer(
        "Streams: the simulated program's console output goes to stdout\n"
        "(flushed first); the run summary, --stats dump, and --trace\n"
        "disassembly go to stderr, so stdout stays clean for piping.\n"
        "With --stats-json - or --profile-json -, that JSON document\n"
        "claims stdout and the program console moves to stderr.\n");
    parser.parseOrExit(argc, argv);

    if (list_monitors) {
        std::fputs(listMonitorsText().c_str(), stdout);
        return 0;
    }
    if (path.empty()) {
        std::fprintf(stderr, "missing program.s\n%s\n",
                     parser.usageLine().c_str());
        return 2;
    }
    if (!monitor_name.empty() &&
        !parseMonitorKind(monitor_name, &config.monitor)) {
        std::fprintf(stderr,
                     "unknown monitor '%s' (known: none, %s; see "
                     "--list-monitors)\n",
                     monitor_name.c_str(), knownMonitorNames().c_str());
        return 2;
    }

    if (!exec_mode_name.empty() &&
        !parseExecMode(exec_mode_name, &config.exec_mode)) {
        std::fprintf(stderr,
                     "unknown exec mode '%s' (interp or threaded)\n",
                     exec_mode_name.c_str());
        return 2;
    }

    if (config.monitor != MonitorKind::kNone && !mode_given)
        config.mode = ImplMode::kFlexFabric;
    if (no_fast_forward)
        config.fast_forward = false;

    if (!fault_plan_path.empty()) {
        std::ifstream plan_file(fault_plan_path);
        if (!plan_file) {
            std::fprintf(stderr, "cannot open %s\n",
                         fault_plan_path.c_str());
            return 2;
        }
        std::stringstream plan_text;
        plan_text << plan_file.rdbuf();
        std::string error;
        if (!parseFaultPlan(plan_text.str(), &config.faults, &error)) {
            std::fprintf(stderr, "%s: %s\n", fault_plan_path.c_str(),
                         error.c_str());
            return 2;
        }
    }
    for (const std::string &text : inject_specs) {
        FaultSpec spec;
        std::string error;
        if (!parseFaultSpec(text, &spec, &error)) {
            std::fprintf(stderr, "--inject %s: %s\n", text.c_str(),
                         error.c_str());
            return 2;
        }
        config.faults.specs.push_back(spec);
    }
    if (std::string why = validateFaultPlan(config.faults);
        !why.empty()) {
        std::fprintf(stderr, "invalid fault plan: %s\n", why.c_str());
        return 2;
    }

    std::ifstream file(path);
    if (!file) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 2;
    }
    std::stringstream source;
    source << file.rdbuf();

    Assembler assembler;
    Program program;
    if (!assembler.assemble(source.str(), &program)) {
        std::fprintf(stderr, "%s: assembly failed\n%s", path.c_str(),
                     assembler.errorText().c_str());
        return 1;
    }

    // Observability output implies histogram sampling: the JSON should
    // carry populated occupancy/queue-depth distributions. Threaded
    // dispatch and sampled timing skip per-cycle bookkeeping, so the
    // implication is suppressed there (an explicit --trace-json under
    // sampling still reaches finalize() and is rejected with a typed
    // error; under threaded it is legal and falls back to the per-cycle
    // loop).
    if ((!stats_json_path.empty() || !trace_json_path.empty()) &&
        !no_histograms && config.exec_mode == ExecMode::kInterp &&
        config.sample_period == 0) {
        config.histograms = true;
    }
    if (!trace_json_path.empty() && !trace_out_path.empty()) {
        std::fprintf(stderr, "--trace-json and --trace-out are mutually "
                             "exclusive (one trace sink per run)\n");
        return 2;
    }

    SimRequest request(config);
    request.program(std::move(program));
    TraceBuffer sink;
    if (!trace_json_path.empty())
        request.trace(&sink);
    std::optional<TraceStreamWriter> stream;
    if (!trace_out_path.empty()) {
        stream.emplace(trace_out_path);
        request.traceStream(&*stream);
    }
    if (!profile_json_path.empty())
        request.profileJson(profile_top);
    if (trace) {
        request.tracer(
            [](Cycle cycle, Addr pc, const Instruction &inst) {
                std::fprintf(stderr, "%10llu  0x%08x  %s\n",
                             static_cast<unsigned long long>(cycle), pc,
                             disassemble(inst, pc).c_str());
            });
    }
    if (!stats_json_path.empty())
        request.statsJson();
    if (dump_stats)
        request.statsDump();
    const SimOutcome outcome = request.run();
    const RunResult &result = outcome.result;

    // When a JSON report claims stdout (--stats-json - / --profile-json
    // -), the simulated console moves to stderr so stdout stays a
    // single machine-readable document for piping.
    const bool json_on_stdout = isStdoutPath(stats_json_path) ||
                                isStdoutPath(profile_json_path);
    std::fputs(result.console.c_str(),
               json_on_stdout ? stderr : stdout);
    // Flush the program's console before any stderr reporting so the
    // two streams interleave sensibly when merged (e.g. under 2>&1).
    std::fflush(json_on_stdout ? stderr : stdout);
    if (!quiet) {
        std::fprintf(stderr,
                     "[flexcore-run] %s: %s after %llu cycles, %llu "
                     "instructions",
                     path.c_str(),
                     std::string(exitName(result.exit)).c_str(),
                     static_cast<unsigned long long>(result.cycles),
                     static_cast<unsigned long long>(
                         result.instructions));
        if (result.exit == RunResult::Exit::kExited)
            std::fprintf(stderr, ", exit code %u", result.exit_code);
        if (result.exit == RunResult::Exit::kMonitorTrap)
            std::fprintf(stderr, " (%s at pc=0x%x)",
                         result.trap_reason.c_str(), result.trap.pc);
        if (result.exit == RunResult::Exit::kCoreTrap)
            std::fprintf(stderr, " (%s: %s at pc=0x%x)",
                         std::string(trapKindName(result.trap.kind))
                             .c_str(),
                         result.trap.detail.c_str(), result.trap.pc);
        if (result.exit == RunResult::Exit::kHang)
            std::fprintf(stderr, " (%s)", result.trap_reason.c_str());
        if (result.sampled) {
            std::fprintf(
                stderr,
                " [sampled: estimate from %llu detailed cycles / %llu "
                "detailed instructions]",
                static_cast<unsigned long long>(result.detailed_cycles),
                static_cast<unsigned long long>(
                    result.detailed_instructions));
        }
        std::fprintf(stderr, "\n");
        if ((result.exit == RunResult::Exit::kMonitorTrap ||
             result.exit == RunResult::Exit::kCoreTrap) &&
            result.trap_inst != 0) {
            std::fprintf(
                stderr, "[flexcore-run]   offending instruction: %s\n",
                disassemble(result.trap_inst, result.trap.pc).c_str());
        }
        if (!config.faults.empty()) {
            const FaultReport &fault = outcome.fault;
            std::fprintf(
                stderr,
                "[flexcore-run] fault outcome: %s (%llu applied, %llu "
                "skipped)",
                std::string(faultOutcomeName(fault.outcome)).c_str(),
                static_cast<unsigned long long>(fault.applied),
                static_cast<unsigned long long>(fault.skipped));
            if (fault.outcome == FaultOutcome::kDetected)
                std::fprintf(stderr, ", detection latency %lld cycles",
                             static_cast<long long>(
                                 fault.detection_latency));
            std::fprintf(stderr, "\n");
            if (!outcome.golden_diff.empty())
                std::fprintf(stderr, "[flexcore-run]   %s\n",
                             outcome.golden_diff.c_str());
        }
    }
    if (dump_stats)
        std::fputs(outcome.stats_text.c_str(), stderr);
    if (!stats_json_path.empty())
        writeTextOrStdout(stats_json_path, outcome.stats_json);
    if (!profile_json_path.empty())
        writeTextOrStdout(profile_json_path, outcome.profile_json);
    if (!trace_json_path.empty())
        sink.write(trace_json_path);
    if (stream)
        stream->finish();

    switch (result.exit) {
      case RunResult::Exit::kExited:
        return static_cast<int>(result.exit_code & 0x7f);
      case RunResult::Exit::kMonitorTrap:
        return 125;
      case RunResult::Exit::kCoreTrap:
        return 126;
      case RunResult::Exit::kMaxCycles:
        return 124;
      case RunResult::Exit::kHang:
        return 123;
    }
    return 1;
}
