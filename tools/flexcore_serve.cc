/**
 * @file
 * flexcore-serve: a persistent simulation service. Clients connect
 * over a Unix or TCP socket, send wire-schema SimRequest documents
 * (docs/serve.md), and get back SimResponse documents — so a sweep
 * driver, a notebook, or a CI harness can issue thousands of runs
 * without paying process startup and workload re-assembly every time.
 *
 *   flexcore-serve --listen unix:/tmp/flexcore.sock
 *   flexcore-serve --listen tcp:127.0.0.1:7421 --jobs 8
 *   flexcore-serve --listen unix:s.sock --max-requests 64   # CI smoke
 *
 * Protocol (length-prefixed JSON frames; docs/serve.md):
 *   -> {"op": "ping"}                     <- {"ok": true, ...}
 *   -> {"op": "stats"}                    <- server + cache counters
 *   -> {"op": "health"}                   <- queue depth, in-flight,
 *                                            cache, uptime
 *   -> {"op": "sim", "request": {...}}    <- SimResponse document
 *        (+ one binary FXTR frame when the request set trace_fxtr)
 *   -> {"op": "shutdown"}                 <- {"ok": true}, drain + exit
 *
 * The engine itself — accept loop, admission control, deadlines,
 * drain — lives in src/serve/server.{h,cc}; this file is flag parsing
 * plus the SIGTERM/SIGINT self-pipe hookup. See docs/serve.md for the
 * full resilience semantics and the error taxonomy.
 */

#include <csignal>
#include <cstdio>
#include <string>

#include <unistd.h>

#include "common/cliopts.h"
#include "common/netio.h"
#include "common/threadpool.h"
#include "serve/server.h"
#include "sim/sim_response.h"

using namespace flexcore;

namespace {

/** Self-pipe write end; the only state a signal handler touches. */
volatile sig_atomic_t g_wake_armed = 0;
int g_wake_fd = -1;

void
onTermSignal(int)
{
    // Async-signal-safe: one write(2), nothing else. The accept loop
    // polls the read end and runs the actual (lock-taking) drain.
    if (g_wake_armed) {
        const char byte = 1;
        [[maybe_unused]] const ssize_t n = ::write(g_wake_fd, &byte, 1);
    }
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string listen = "unix:flexcore.sock";
    u32 jobs = 0;
    serve::ServeLimits limits;
    u64 deadline_ms = 0;
    u32 max_frame = limits.max_frame_bytes;
    u32 idle_timeout = 0;
    u32 frame_timeout = static_cast<u32>(limits.frame_timeout_ms);
    u32 drain_timeout = static_cast<u32>(limits.drain_timeout_ms);
    bool no_cache = false;
    bool quiet = false;

    cli::Parser parser("flexcore-serve",
                       "serve simulation requests over a socket");
    parser.option("--listen", &listen, "ENDPOINT",
                  "unix:PATH or tcp:HOST:PORT (default "
                  "unix:flexcore.sock)");
    parser.option("--jobs", &jobs, "N",
                  "simulation worker threads (default: all hardware "
                  "threads)");
    parser.option("--max-requests", &limits.max_requests, "N",
                  "drain and exit after N successful sim requests "
                  "(0 = run until shutdown; for smoke tests)");
    parser.option("--default-deadline-ms", &deadline_ms, "MS",
                  "wall-clock deadline per sim request, counted from "
                  "admission; expiry returns a typed "
                  "deadline_exceeded error (0 = none)");
    parser.option("--max-request-cycles", &limits.max_request_cycles,
                  "N",
                  "clamp each request's simulated-cycle budget "
                  "(0 = none; exceeding the clamp is a normal "
                  "max_cycles result)");
    parser.option("--max-pending", &limits.max_pending, "N",
                  "max sim requests admitted but not yet running; "
                  "past it new sims get a typed overloaded error "
                  "(0 = unbounded)");
    parser.option("--max-conns", &limits.max_conns, "N",
                  "max concurrent connections; excess connections get "
                  "one overloaded frame and are closed (0 = "
                  "unbounded)");
    parser.option("--max-frame-bytes", &max_frame, "BYTES",
                  "largest request frame accepted; bigger length "
                  "prefixes get a typed frame_too_large rejection "
                  "without allocating the claimed size (default 8 "
                  "MiB)");
    parser.option("--idle-timeout-ms", &idle_timeout, "MS",
                  "reap connections idle this long (0 = never)");
    parser.option("--frame-timeout-ms", &frame_timeout, "MS",
                  "budget for a started frame (read or write) to "
                  "finish — the slow-loris bound (default 10000)");
    parser.option("--drain-timeout-ms", &drain_timeout, "MS",
                  "on shutdown, how long in-flight sims may finish "
                  "before they are cancelled (default 5000)");
    parser.flag("--no-cache", &no_cache,
                "disable the assembled-program cache (every request "
                "assembles from source)");
    parser.flag("--quiet", &quiet, "suppress per-request log lines");
    parser.footer(
        "Speak the protocol with flexcore-loadgen, or by hand: each\n"
        "frame is a u32 little-endian length followed by that many\n"
        "bytes of JSON. See docs/serve.md for the request schema,\n"
        "resilience semantics, and the error taxonomy. SIGTERM/SIGINT\n"
        "drain gracefully: in-flight sims finish (bounded by\n"
        "--drain-timeout-ms), new sims get shutting_down, exit 0.\n");
    parser.parseOrExit(argc, argv);

    limits.default_deadline_ms = static_cast<long>(deadline_ms);
    limits.max_frame_bytes = max_frame;
    limits.idle_timeout_ms =
        idle_timeout == 0 ? -1 : static_cast<int>(idle_timeout);
    limits.frame_timeout_ms = static_cast<int>(frame_timeout);
    limits.drain_timeout_ms = static_cast<int>(drain_timeout);
    limits.quiet = quiet;

    netio::Endpoint endpoint;
    std::string error;
    if (!netio::parseEndpoint(listen, &endpoint, &error)) {
        std::fprintf(stderr, "flexcore-serve: %s\n", error.c_str());
        return 2;
    }

    ThreadPool pool(jobs);
    ProgramCache cache;
    serve::Server server(&pool, no_cache ? nullptr : &cache, limits);
    if (!server.listen(endpoint, &error)) {
        std::fprintf(stderr, "flexcore-serve: %s\n", error.c_str());
        return 2;
    }

    g_wake_fd = server.wakeWriteFd();
    g_wake_armed = 1;
    struct sigaction sa = {};
    sa.sa_handler = onTermSignal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    server.serve();
    g_wake_armed = 0;

    std::fprintf(stderr,
                 "[flexcore-serve] served %llu sims (%llu errors, "
                 "%llu shed), cache %llu hits / %llu misses\n",
                 static_cast<unsigned long long>(server.sims()),
                 static_cast<unsigned long long>(server.errors()),
                 static_cast<unsigned long long>(server.shed()),
                 static_cast<unsigned long long>(cache.hits()),
                 static_cast<unsigned long long>(cache.misses()));
    return 0;
}
