/**
 * @file
 * flexcore-serve: a persistent simulation service. Clients connect
 * over a Unix or TCP socket, send wire-schema SimRequest documents
 * (docs/serve.md), and get back SimResponse documents — so a sweep
 * driver, a notebook, or a CI harness can issue thousands of runs
 * without paying process startup and workload re-assembly every time.
 *
 *   flexcore-serve --listen unix:/tmp/flexcore.sock
 *   flexcore-serve --listen tcp:127.0.0.1:7421 --jobs 8
 *   flexcore-serve --listen unix:s.sock --max-requests 64   # CI smoke
 *
 * Protocol (length-prefixed JSON frames; docs/serve.md):
 *   -> {"op": "ping"}                     <- {"ok": true, ...}
 *   -> {"op": "stats"}                    <- server + cache counters
 *   -> {"op": "sim", "request": {...}}    <- SimResponse document
 *        (+ one binary FXTR frame when the request set trace_fxtr)
 *   -> {"op": "shutdown"}                 <- {"ok": true}, server exits
 *
 * Concurrency: one lightweight thread per connection parses frames and
 * writes replies; the simulations themselves are scheduled onto the
 * shared work-stealing ThreadPool (--jobs), so a burst of clients
 * saturates the cores without oversubscribing them. Assembled programs
 * are cached content-addressed by source hash; concurrent requests for
 * the same workload share one immutable Program image.
 *
 * A malformed or hostile frame never takes the server down: every
 * failure maps to a typed error response (the kBad* ConfigError family)
 * or, at worst, to dropping that one connection.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/cliopts.h"
#include "common/json.h"
#include "common/jsonutil.h"
#include "common/netio.h"
#include "common/threadpool.h"
#include "extensions/registry.h"
#include "sim/sim_response.h"

using namespace flexcore;

namespace {

struct ServerState
{
    netio::Endpoint endpoint;
    int listen_fd = -1;
    ThreadPool *pool = nullptr;
    ProgramCache *cache = nullptr;   //!< null when --no-cache
    bool quiet = false;
    u64 max_requests = 0;            //!< 0 = unlimited
    std::atomic<u64> sims{0};        //!< sim requests served
    std::atomic<u64> errors{0};      //!< error responses sent
    std::atomic<bool> shutdown{false};
};

/** Render the small non-sim replies by hand (fixed field order). */
std::string
okJson(const char *op)
{
    return std::string("{\"ok\": true, \"op\": \"") + op + "\"}";
}

std::string
statsJson(const ServerState &state)
{
    std::string out = "{\"ok\": true, \"op\": \"stats\", \"sims\": " +
                      std::to_string(state.sims.load()) +
                      ", \"errors\": " +
                      std::to_string(state.errors.load());
    out += ", \"cache\": ";
    if (state.cache) {
        out += "{\"hits\": " + std::to_string(state.cache->hits()) +
               ", \"misses\": " + std::to_string(state.cache->misses()) +
               ", \"entries\": " + std::to_string(state.cache->size()) +
               "}";
    } else {
        out += "null";
    }
    out += ", \"threads\": " +
           std::to_string(state.pool->threadCount()) + "}";
    return out;
}

std::string
errorJson(const std::string &message)
{
    SimResponse response;
    response.error =
        makeConfigError(ConfigError::Code::kBadRequest, message);
    return simResponseJson(response);
}

/**
 * Run one sim request on the pool and block this connection thread
 * until it finishes. The pool is the concurrency throttle: with C
 * clients and J workers, at most J simulations run at once and the
 * rest queue in submission order.
 */
SimResponse
runOnPool(ServerState *state, SimRequest request, std::string *trace)
{
    SimResponse response;
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    state->pool->submit([&] {
        SimResponse r =
            serveSimRequest(std::move(request), state->cache, trace);
        std::lock_guard<std::mutex> lock(mutex);
        response = std::move(r);
        done = true;
        cv.notify_one();
    });
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return done; });
    return response;
}

/** One reply (+ optional trace frame); false = drop the connection. */
bool
handleFrame(ServerState *state, int fd, const std::string &payload)
{
    JsonValue doc;
    std::string parse_error;
    if (!parseJson(payload, &doc, &parse_error)) {
        state->errors.fetch_add(1);
        return netio::sendFrame(fd,
                                errorJson("request frame is not valid "
                                          "JSON: " +
                                          parse_error));
    }
    const JsonValue *op = doc.find("op");
    if (!doc.isObject() || !op || !op->isString()) {
        state->errors.fetch_add(1);
        return netio::sendFrame(
            fd, errorJson("request must be an object with a string "
                          "\"op\" field"));
    }

    if (op->str == "ping")
        return netio::sendFrame(fd, okJson("ping"));
    if (op->str == "stats")
        return netio::sendFrame(fd, statsJson(*state));
    if (op->str == "shutdown") {
        state->shutdown.store(true);
        // shutdown(2) on the listener kicks the accept loop out of its
        // blocking accept (close() would not); in-flight connections
        // finish their frames.
        netio::shutdownSocket(state->listen_fd);
        return netio::sendFrame(fd, okJson("shutdown"));
    }
    if (op->str != "sim") {
        state->errors.fetch_add(1);
        return netio::sendFrame(
            fd, errorJson("unknown op \"" + op->str +
                          "\" (expected ping, stats, sim, or "
                          "shutdown)"));
    }

    const JsonValue *request_doc = doc.find("request");
    if (!request_doc) {
        state->errors.fetch_add(1);
        return netio::sendFrame(
            fd, errorJson("op \"sim\" needs a \"request\" object"));
    }
    SimRequest request;
    ConfigError error;
    if (!SimRequest::fromJson(*request_doc, &request, &error)) {
        state->errors.fetch_add(1);
        SimResponse rejection;
        rejection.error = error;
        return netio::sendFrame(fd, simResponseJson(rejection));
    }

    const bool want_trace = request.traceFxtrRequested();
    const auto t0 = std::chrono::steady_clock::now();
    std::string trace;
    SimResponse response = runOnPool(state, std::move(request),
                                     want_trace ? &trace : nullptr);
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();

    if (response.error) {
        state->errors.fetch_add(1);
    } else {
        const u64 served = state->sims.fetch_add(1) + 1;
        if (state->max_requests != 0 &&
            served >= state->max_requests &&
            !state->shutdown.exchange(true)) {
            netio::shutdownSocket(state->listen_fd);
        }
    }
    if (!state->quiet) {
        std::fprintf(stderr,
                     "[flexcore-serve] sim #%llu %s cycles=%llu "
                     "cache=%s %.1fms\n",
                     static_cast<unsigned long long>(state->sims.load()),
                     response.error
                         ? configErrorName(response.error.code).data()
                         : exitName(response.result.exit).data(),
                     static_cast<unsigned long long>(
                         response.result.cycles),
                     response.cache_hit ? "hit" : "miss", ms);
    }
    if (!netio::sendFrame(fd, simResponseJson(response)))
        return false;
    if (want_trace && !response.error)
        return netio::sendFrame(fd, trace);
    return true;
}

void
serveConnection(ServerState *state, int fd)
{
    for (;;) {
        std::string payload;
        std::string error;
        if (!netio::recvFrame(fd, &payload, &error)) {
            if (!error.empty() && !state->quiet)
                std::fprintf(stderr, "[flexcore-serve] client: %s\n",
                             error.c_str());
            break;
        }
        if (!handleFrame(state, fd, payload))
            break;
    }
    netio::closeSocket(fd);
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string listen = "unix:flexcore.sock";
    u32 jobs = 0;
    u64 max_requests = 0;
    bool no_cache = false;
    bool quiet = false;

    cli::Parser parser("flexcore-serve",
                       "serve simulation requests over a socket");
    parser.option("--listen", &listen, "ENDPOINT",
                  "unix:PATH or tcp:HOST:PORT (default "
                  "unix:flexcore.sock)");
    parser.option("--jobs", &jobs, "N",
                  "simulation worker threads (default: all hardware "
                  "threads)");
    parser.option("--max-requests", &max_requests, "N",
                  "stop accepting new connections after N successful "
                  "sim requests (0 = run until shutdown; for smoke "
                  "tests)");
    parser.flag("--no-cache", &no_cache,
                "disable the assembled-program cache (every request "
                "assembles from source)");
    parser.flag("--quiet", &quiet, "suppress per-request log lines");
    parser.footer(
        "Speak the protocol with flexcore-loadgen, or by hand: each\n"
        "frame is a u32 little-endian length followed by that many\n"
        "bytes of JSON. See docs/serve.md for the request schema.\n");
    parser.parseOrExit(argc, argv);

    ServerState state;
    std::string error;
    if (!netio::parseEndpoint(listen, &state.endpoint, &error)) {
        std::fprintf(stderr, "flexcore-serve: %s\n", error.c_str());
        return 2;
    }
    state.listen_fd = netio::listenOn(state.endpoint, &error);
    if (state.listen_fd < 0) {
        std::fprintf(stderr, "flexcore-serve: %s\n", error.c_str());
        return 2;
    }

    ThreadPool pool(jobs);
    ProgramCache cache;
    state.pool = &pool;
    state.cache = no_cache ? nullptr : &cache;
    state.quiet = quiet;
    state.max_requests = max_requests;

    std::fprintf(stderr,
                 "[flexcore-serve] listening on %s (%u workers, "
                 "cache %s)\n",
                 netio::endpointString(state.endpoint).c_str(),
                 pool.threadCount(), no_cache ? "off" : "on");

    std::vector<std::thread> connections;
    for (;;) {
        const int fd = netio::acceptClient(state.listen_fd);
        if (fd < 0)
            break;   // listener closed by shutdown/max-requests
        connections.emplace_back(serveConnection, &state, fd);
    }
    for (std::thread &t : connections)
        t.join();
    netio::closeSocket(state.listen_fd);
    if (state.endpoint.is_unix)
        ::unlink(state.endpoint.path.c_str());

    std::fprintf(stderr,
                 "[flexcore-serve] served %llu sims (%llu errors), "
                 "cache %llu hits / %llu misses\n",
                 static_cast<unsigned long long>(state.sims.load()),
                 static_cast<unsigned long long>(state.errors.load()),
                 static_cast<unsigned long long>(cache.hits()),
                 static_cast<unsigned long long>(cache.misses()));
    return 0;
}
