/**
 * @file
 * flexcore-loadgen: client and load generator for flexcore-serve.
 * Builds one wire-schema SimRequest from the same flag surface the
 * local tools use (common/outputspec.h — so a served run is configured
 * exactly like a `flexcore-run` of the same flags), then drives the
 * server with it from N concurrent connections and reports latency
 * percentiles and throughput.
 *
 *   flexcore-loadgen --connect unix:/tmp/flexcore.sock --workload sha
 *   flexcore-loadgen --connect tcp:127.0.0.1:7421 --clients 8 \
 *                    --requests 16
 *   flexcore-loadgen --connect unix:s.sock --stats-json served.json \
 *                    --shutdown          # extract served stats, stop
 *   flexcore-loadgen --connect unix:s.sock --bench \
 *                    --bench-out BENCH_serve.json
 *
 * --bench runs the standard ladder (1, 8, and 64 concurrent clients)
 * plus a cache cold-vs-warm phase (unique sources force assembly;
 * repeated sources hit the server's content-addressed program cache)
 * and writes the results as BENCH_serve.json.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cliopts.h"
#include "common/ioutil.h"
#include "common/jsonutil.h"
#include "common/netio.h"
#include "common/outputspec.h"
#include "extensions/registry.h"
#include "sim/sim_response.h"

using namespace flexcore;

namespace {

/**
 * Connect retry policy: bounded exponential backoff (5 ms doubling to
 * a 500 ms cap) with deterministic key-derived jitter — every client
 * hashes its own stable key into a seed, so retry schedules are
 * reproducible run to run yet decorrelated client to client (no
 * thundering herd when a fleet starts against a not-yet-listening
 * server). Worst case ~12 s before giving up.
 */
constexpr int kConnectAttempts = 30;
constexpr u32 kBackoffBaseMs = 5;
constexpr u32 kBackoffMaxMs = 500;

/** Key-derived jitter seed (same idiom as the campaign runner). */
u64
jitterSeed(const std::string &key)
{
    return fnv1a64(key);
}

/** Wrap a request document in the protocol envelope. */
std::string
simEnvelope(const std::string &request_json)
{
    return "{\"op\": \"sim\", \"request\": " + request_json + "}";
}

struct PhaseResult
{
    u64 requests = 0;
    u64 errors = 0;
    double wall_seconds = 0;
    std::vector<double> latencies_ms;   //!< merged, unsorted
    std::vector<u32> connect_retries;   //!< per client, client order

    double
    percentileMs(double p) const
    {
        if (latencies_ms.empty())
            return 0;
        std::vector<double> sorted = latencies_ms;
        std::sort(sorted.begin(), sorted.end());
        const size_t at = std::min(
            sorted.size() - 1,
            static_cast<size_t>(p * static_cast<double>(sorted.size())));
        return sorted[at];
    }

    double
    requestsPerSec() const
    {
        return wall_seconds > 0
                   ? static_cast<double>(requests) / wall_seconds
                   : 0;
    }
};

/**
 * One client: connect, issue every envelope in order, record
 * latencies. Each envelope may be followed by a binary trace frame
 * (per @p trace_frames); the first fully-decoded response is stored
 * into @p first_response / @p first_trace when non-null.
 */
void
clientLoop(const netio::Endpoint &endpoint,
           const std::vector<std::string> *envelopes, bool trace_frames,
           u64 seed, std::vector<double> *latencies_ms, u64 *errors,
           u32 *retries, SimResponse *first_response,
           std::string *first_trace, std::string *fail)
{
    std::string error;
    const int fd = netio::connectWithBackoff(
        endpoint, kConnectAttempts, kBackoffBaseMs, kBackoffMaxMs,
        seed, retries, &error);
    if (fd < 0) {
        *fail = error;
        return;
    }
    bool first = true;
    for (const std::string &envelope : *envelopes) {
        const auto t0 = std::chrono::steady_clock::now();
        std::string payload;
        if (!netio::sendFrame(fd, envelope) ||
            !netio::recvFrame(fd, &payload, &error)) {
            *fail = error.empty() ? "server closed the connection"
                                  : error;
            break;
        }
        SimResponse response;
        std::string decode_error;
        if (!simResponseFromJson(payload, &response, &decode_error)) {
            *fail = "bad response: " + decode_error;
            break;
        }
        std::string trace;
        if (trace_frames && !response.error &&
            !netio::recvFrame(fd, &trace, &error)) {
            *fail = "missing trace frame: " + error;
            break;
        }
        latencies_ms->push_back(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count());
        if (response.error) {
            ++*errors;
            if (first && fail->empty()) {
                *fail = std::string(
                            configErrorName(response.error.code)) +
                        ": " + response.error.message;
            }
        } else if (first) {
            if (first_response)
                *first_response = std::move(response);
            if (first_trace)
                *first_trace = std::move(trace);
        }
        first = false;
    }
    netio::closeSocket(fd);
}

/** Drive @p clients concurrent connections, @p envelopes each. */
PhaseResult
runPhase(const netio::Endpoint &endpoint, unsigned clients,
         const std::vector<std::string> &envelopes, bool trace_frames,
         SimResponse *first_response, std::string *first_trace)
{
    PhaseResult phase;
    std::vector<std::vector<double>> latencies(clients);
    std::vector<u64> errors(clients, 0);
    std::vector<u32> retries(clients, 0);
    std::vector<std::string> fails(clients);
    std::vector<std::thread> threads;
    const auto t0 = std::chrono::steady_clock::now();
    for (unsigned c = 0; c < clients; ++c) {
        threads.emplace_back(clientLoop, std::cref(endpoint), &envelopes,
                             trace_frames,
                             jitterSeed("loadgen/client/" +
                                        std::to_string(c)),
                             &latencies[c], &errors[c], &retries[c],
                             c == 0 ? first_response : nullptr,
                             c == 0 ? first_trace : nullptr, &fails[c]);
    }
    for (std::thread &t : threads)
        t.join();
    phase.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    for (unsigned c = 0; c < clients; ++c) {
        phase.requests += latencies[c].size();
        phase.errors += errors[c];
        phase.connect_retries.push_back(retries[c]);
        phase.latencies_ms.insert(phase.latencies_ms.end(),
                                  latencies[c].begin(),
                                  latencies[c].end());
        if (!fails[c].empty())
            std::fprintf(stderr, "[flexcore-loadgen] client %u: %s\n",
                         c, fails[c].c_str());
    }
    return phase;
}

u64
totalRetries(const PhaseResult &phase)
{
    u64 total = 0;
    for (u32 r : phase.connect_retries)
        total += r;
    return total;
}

/** Render per-client retry counts as a JSON array. */
std::string
retriesJson(const PhaseResult &phase)
{
    std::string out = "[";
    for (size_t i = 0; i < phase.connect_retries.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += std::to_string(phase.connect_retries[i]);
    }
    out += "]";
    return out;
}

double
meanMs(const std::vector<double> &samples)
{
    if (samples.empty())
        return 0;
    double total = 0;
    for (double s : samples)
        total += s;
    return total / static_cast<double>(samples.size());
}

/** Send one control op ({"op": "..."}) on a fresh connection. */
bool
sendOp(const netio::Endpoint &endpoint, const char *op,
       std::string *reply, std::string *error)
{
    const int fd = netio::connectWithBackoff(
        endpoint, kConnectAttempts, kBackoffBaseMs, kBackoffMaxMs,
        jitterSeed(std::string("loadgen/op/") + op), nullptr, error);
    if (fd < 0)
        return false;
    const std::string envelope =
        std::string("{\"op\": \"") + op + "\"}";
    const bool ok = netio::sendFrame(fd, envelope) &&
                    netio::recvFrame(fd, reply, error);
    netio::closeSocket(fd);
    return ok;
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string connect = "unix:flexcore.sock";
    std::string workload_name = "sha";
    std::string scale_name = "test";
    std::string source_path;
    std::string monitor_name;
    bool mode_given = false;
    u32 clients = 1;
    u32 requests = 1;
    bool bench = false;
    std::string bench_out = "BENCH_serve.json";
    bool do_shutdown = false;
    bool print_response = false;
    SystemConfig config;
    OutputSpec ospec;

    cli::Parser parser("flexcore-loadgen",
                       "drive a flexcore-serve instance");
    parser.option("--connect", &connect, "ENDPOINT",
                  "server endpoint, unix:PATH or tcp:HOST:PORT "
                  "(default unix:flexcore.sock)");
    parser.option("--workload", &workload_name, "NAME",
                  "suite workload to request (default sha)");
    parser.choice("--scale", {"test", "full"},
                  [&](size_t i) { scale_name = i == 0 ? "test" : "full"; },
                  "workload input size (default test)");
    parser.option("--source", &source_path, "FILE",
                  "send this .s file instead of a named workload "
                  "(- = stdin; no golden verification)");
    parser.option("--monitor", &monitor_name, "NAME",
                  "monitoring extension: none, " + knownMonitorNames() +
                      " (default none)");
    parser.choice("--mode", {"baseline", "asic", "flexcore", "software"},
                  [&](size_t i) {
                      static const ImplMode modes[] = {
                          ImplMode::kBaseline, ImplMode::kAsic,
                          ImplMode::kFlexFabric, ImplMode::kSoftware};
                      config.mode = modes[i];
                      mode_given = true;
                  },
                  "implementation mode (default flexcore when a "
                  "monitor is set)");
    parser.option("--clients", &clients, "N",
                  "concurrent connections (default 1)");
    parser.option("--requests", &requests, "N",
                  "requests per connection (default 1)");
    parser.flag("--bench", &bench,
                "run the benchmark ladder (1, 8, 64 clients) plus a "
                "cache cold/warm phase and write --bench-out");
    parser.option("--bench-out", &bench_out, "FILE",
                  "benchmark result JSON (default BENCH_serve.json, "
                  "- = stdout)");
    parser.flag("--shutdown", &do_shutdown,
                "send a shutdown op when done");
    parser.flag("--print-response", &print_response,
                "print the first response document to stdout");
    ospec.attach(&parser,
                 kSpecExecMode | kSpecSampling | kSpecFaults |
                     kSpecWatchdog | kSpecMaxCycles | kSpecStatsJson |
                     kSpecProfileFile | kSpecTrace | kSpecFastForward |
                     kSpecHistograms | kSpecListMonitors | kSpecCores);
    parser.footer(
        "--stats-json/--profile-json/--trace-out request those outputs\n"
        "from the server and write the returned bytes locally, so\n"
        "`flexcore-loadgen --stats-json a.json` and `flexcore-run\n"
        "--stats-json b.json` of the same configuration produce\n"
        "byte-identical documents (CI cmp-gates this).\n");
    parser.parseOrExit(argc, argv);

    if (ospec.handledListMonitors())
        return 0;
    if (!ospec.trace_json_path.empty()) {
        std::fprintf(stderr,
                     "flexcore-loadgen: --trace-json is not available "
                     "over the wire; use --trace-out (FXTR) and "
                     "`flexcore-trace export --chrome`\n");
        return 2;
    }
    if (!monitor_name.empty() &&
        !parseMonitorKind(monitor_name, &config.monitor)) {
        std::fprintf(stderr,
                     "flexcore-loadgen: unknown monitor '%s' (known: "
                     "none, %s)\n",
                     monitor_name.c_str(), knownMonitorNames().c_str());
        return 2;
    }
    if (config.monitor != MonitorKind::kNone && !mode_given)
        config.mode = ImplMode::kFlexFabric;
    if (!ospec.apply(&config, "flexcore-loadgen"))
        return 2;

    netio::Endpoint endpoint;
    std::string error;
    if (!netio::parseEndpoint(connect, &endpoint, &error)) {
        std::fprintf(stderr, "flexcore-loadgen: %s\n", error.c_str());
        return 2;
    }

    // Build the one request every connection repeats. The wire schema
    // carries intent (names, flags), not process-local state, so the
    // same document produces the same run on any server.
    WorkloadScale scale = WorkloadScale::kTest;
    parseWorkloadScale(scale_name, &scale);
    std::string source_text;
    SimRequest request(config);
    if (!source_path.empty()) {
        if (!readTextOrStdin(source_path, &source_text)) {
            std::fprintf(stderr, "flexcore-loadgen: cannot open %s\n",
                         source_path.c_str());
            return 2;
        }
        request.source(source_text);
    } else {
        // Pre-check the name: workloadByName() is fatal on unknowns,
        // and a typo deserves a usage error, not a crash dump.
        Workload probe;
        if (!makeWorkload(workload_name, scale, &probe)) {
            std::fprintf(stderr,
                         "flexcore-loadgen: unknown workload '%s' "
                         "(known: %s)\n",
                         workload_name.c_str(),
                         knownWorkloadNames().c_str());
            return 2;
        }
        request.workloadByName(workload_name, scale);
    }
    ospec.configureWireRequest(&request);
    const std::string request_json = request.toJson();
    const bool want_trace = request.traceFxtrRequested();

    const std::vector<std::string> envelopes(
        requests, simEnvelope(request_json));

    int exit_code = 0;
    SimResponse first_response;
    std::string first_trace;

    if (!bench) {
        const PhaseResult phase =
            runPhase(endpoint, clients, envelopes, want_trace,
                     &first_response, &first_trace);
        std::fprintf(stderr,
                     "[flexcore-loadgen] %llu requests (%u clients x "
                     "%u), %llu errors, %llu connect retries, %.2fs, "
                     "%.1f req/s, p50 %.1fms, p99 %.1fms\n",
                     static_cast<unsigned long long>(phase.requests),
                     clients, requests,
                     static_cast<unsigned long long>(phase.errors),
                     static_cast<unsigned long long>(
                         totalRetries(phase)),
                     phase.wall_seconds, phase.requestsPerSec(),
                     phase.percentileMs(0.50), phase.percentileMs(0.99));
        if (phase.errors > 0 ||
            phase.requests !=
                static_cast<u64>(clients) * static_cast<u64>(requests))
            exit_code = 1;
    } else {
        // ---- Benchmark mode: the ladder plus cold/warm caching ----
        std::string json = "{\n  \"bench\": \"serve\",\n";
        json += "  \"endpoint\": \"" + jsonEscape(connect) + "\",\n";
        if (!source_path.empty()) {
            json += "  \"source\": \"" + jsonEscape(source_path) +
                    "\",\n";
        } else {
            json += "  \"workload\": \"" + jsonEscape(workload_name) +
                    "\",\n  \"scale\": \"" + jsonEscape(scale_name) +
                    "\",\n";
        }
        json += "  \"monitor\": \"";
        json += monitorKindName(config.monitor);
        json += "\",\n  \"mode\": \"";
        json += implModeName(config.mode);
        json += "\",\n  \"requests_per_client\": " +
                std::to_string(requests) + ",\n  \"ladder\": [\n";

        const unsigned kLadder[] = {1, 8, 64};
        for (size_t i = 0; i < std::size(kLadder); ++i) {
            const unsigned c = kLadder[i];
            const PhaseResult phase = runPhase(
                endpoint, c, envelopes, want_trace,
                i == 0 ? &first_response : nullptr,
                i == 0 ? &first_trace : nullptr);
            if (phase.errors > 0)
                exit_code = 1;
            char buf[192];
            std::snprintf(
                buf, sizeof(buf),
                "    {\"clients\": %u, \"requests\": %llu, "
                "\"wall_seconds\": %.6f, \"requests_per_sec\": %.1f, "
                "\"p50_ms\": %.3f, \"p99_ms\": %.3f, "
                "\"connect_retries\": ",
                c, static_cast<unsigned long long>(phase.requests),
                phase.wall_seconds, phase.requestsPerSec(),
                phase.percentileMs(0.50), phase.percentileMs(0.99));
            json += buf;
            json += retriesJson(phase);
            json += "}";
            json += i + 1 < std::size(kLadder) ? ",\n" : "\n";
            std::fprintf(stderr,
                         "[flexcore-loadgen] ladder %2u clients: %.1f "
                         "req/s, p50 %.1fms, p99 %.1fms\n",
                         c, phase.requestsPerSec(),
                         phase.percentileMs(0.50),
                         phase.percentileMs(0.99));
        }
        json += "  ],\n";

        // Cold vs warm: unique sources defeat the content-addressed
        // cache (every request assembles); a repeated source hits it
        // after the first miss. The workload's own source is the
        // subject so cold and warm run the same program.
        std::string base_source = source_text;
        if (base_source.empty()) {
            Workload wl;
            makeWorkload(workload_name, scale, &wl);
            base_source = wl.source;
        }
        constexpr unsigned kCacheSamples = 8;
        std::vector<std::string> cold;
        for (unsigned i = 0; i < kCacheSamples; ++i) {
            SimRequest cold_request(config);
            cold_request.source(base_source + "\n! cache-bust " +
                                std::to_string(i) + "\n");
            cold.push_back(simEnvelope(cold_request.toJson()));
        }
        SimRequest warm_request(config);
        warm_request.source(base_source + "\n! cache-warm\n");
        const std::vector<std::string> warm(
            kCacheSamples, simEnvelope(warm_request.toJson()));

        const PhaseResult cold_phase =
            runPhase(endpoint, 1, cold, false, nullptr, nullptr);
        const PhaseResult warm_phase =
            runPhase(endpoint, 1, warm, false, nullptr, nullptr);
        if (cold_phase.errors > 0 || warm_phase.errors > 0)
            exit_code = 1;
        // Drop the warm phase's first sample: it is the one legitimate
        // miss that populates the cache entry.
        std::vector<double> warm_hits = warm_phase.latencies_ms;
        if (!warm_hits.empty())
            warm_hits.erase(warm_hits.begin());
        const double cold_ms = meanMs(cold_phase.latencies_ms);
        const double warm_ms = meanMs(warm_hits);
        char buf[224];
        std::snprintf(
            buf, sizeof(buf),
            "  \"cache\": {\"cold_samples\": %u, \"cold_mean_ms\": "
            "%.3f, \"warm_samples\": %zu, \"warm_mean_ms\": %.3f, "
            "\"speedup\": %.3f}\n}\n",
            kCacheSamples, cold_ms, warm_hits.size(), warm_ms,
            warm_ms > 0 ? cold_ms / warm_ms : 0.0);
        json += buf;
        std::fprintf(stderr,
                     "[flexcore-loadgen] cache: cold %.1fms, warm "
                     "%.1fms (%.2fx)\n",
                     cold_ms, warm_ms,
                     warm_ms > 0 ? cold_ms / warm_ms : 0.0);

        writeTextOrStdout(bench_out, json);
        if (!isStdoutPath(bench_out))
            std::fprintf(stderr, "[flexcore-loadgen] wrote %s\n",
                         bench_out.c_str());
    }

    // Local artifacts from the first served response: the byte-exact
    // documents the server captured (the cmp-gate surface).
    if (!ospec.stats_json_path.empty() &&
        !first_response.stats_json.empty())
        writeTextOrStdout(ospec.stats_json_path,
                          first_response.stats_json);
    if (!ospec.profile_json_path.empty() &&
        !first_response.profile_json.empty())
        writeTextOrStdout(ospec.profile_json_path,
                          first_response.profile_json);
    if (!ospec.trace_out_path.empty() && !first_trace.empty()) {
        if (isStdoutPath(ospec.trace_out_path)) {
            std::fwrite(first_trace.data(), 1, first_trace.size(),
                        stdout);
            std::fflush(stdout);
        } else {
            std::FILE *f =
                std::fopen(ospec.trace_out_path.c_str(), "wb");
            if (!f) {
                std::fprintf(stderr,
                             "flexcore-loadgen: cannot open %s\n",
                             ospec.trace_out_path.c_str());
                return 2;
            }
            std::fwrite(first_trace.data(), 1, first_trace.size(), f);
            std::fclose(f);
        }
    }
    if (print_response)
        writeTextOrStdout("-", simResponseJson(first_response));

    if (do_shutdown) {
        std::string reply;
        if (!sendOp(endpoint, "shutdown", &reply, &error)) {
            std::fprintf(stderr,
                         "flexcore-loadgen: shutdown failed: %s\n",
                         error.c_str());
            return exit_code ? exit_code : 1;
        }
    }
    return exit_code;
}
