/**
 * @file
 * flexcore-asm: assemble a SPARC-subset .s file and emit the image.
 *
 *   flexcore-asm prog.s                  # listing (addr, word, disasm)
 *   flexcore-asm --hex prog.s            # one hex word per line
 *   flexcore-asm --symbols prog.s        # symbol table
 *   flexcore-asm --annotate prof.json prog.s   # listing + cycle totals
 *
 * --annotate joins a --profile-json report (flexcore-run and friends)
 * against the listing: each instruction line gains the total cycles
 * the profiler attributed to its PC, turning the hotspot report into
 * source-level annotation.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "assembler/assembler.h"
#include "common/cliopts.h"
#include "common/ioutil.h"
#include "common/outputspec.h"
#include "common/types.h"
#include "extensions/registry.h"
#include "isa/disasm.h"

using namespace flexcore;

namespace {

/**
 * Extract the (pc, total) pairs from a canonical --profile-json
 * report's "pcs" array. The report is machine-written with a fixed
 * field order (core/profile.cc), so a targeted scan is exact; this is
 * not a general JSON parser.
 */
std::map<Addr, u64>
loadProfileTotals(const std::string &json)
{
    std::map<Addr, u64> totals;
    static const std::string kPc = "{\"pc\": \"";
    size_t at = 0;
    while ((at = json.find(kPc, at)) != std::string::npos) {
        at += kPc.size();
        const Addr pc =
            static_cast<Addr>(std::strtoul(json.c_str() + at, nullptr, 16));
        const size_t total_at = json.find("\"total\": ", at);
        if (total_at == std::string::npos)
            break;
        totals[pc] = std::strtoull(
            json.c_str() + total_at + std::strlen("\"total\": "), nullptr,
            10);
    }
    return totals;
}

}  // namespace

int
main(int argc, char **argv)
{
    bool hex = false;
    bool symbols = false;
    std::string path;
    std::string annotate_path;
    OutputSpec ospec;

    cli::Parser parser("flexcore-asm",
                       "assemble a SPARC-subset program");
    parser.flag("--hex", &hex, "emit one hex word per line");
    parser.flag("--symbols", &symbols, "emit the symbol table");
    parser.option("--annotate", &annotate_path, "PROFILE.json",
                  "annotate the listing with per-PC cycle totals from "
                  "a --profile-json report");
    ospec.attach(&parser, kSpecListMonitors);
    parser.positional("program.s", &path, /*required=*/false);
    parser.parseOrExit(argc, argv);

    if (ospec.handledListMonitors())
        return 0;
    if (path.empty()) {
        std::fprintf(stderr, "missing program.s\n%s\n",
                     parser.usageLine().c_str());
        return 2;
    }

    std::string source;
    if (!readTextOrStdin(path, &source)) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 2;
    }

    Assembler assembler;
    Program program;
    if (!assembler.assemble(source, &program)) {
        std::fprintf(stderr, "%s: assembly failed\n%s", path.c_str(),
                     assembler.errorText().c_str());
        return 1;
    }

    if (symbols) {
        for (const auto &[name, value] : program.symbols())
            std::printf("0x%08x %s\n", value, name.c_str());
        return 0;
    }

    std::map<Addr, u64> totals;
    if (!annotate_path.empty()) {
        std::ifstream profile_file(annotate_path);
        if (!profile_file) {
            std::fprintf(stderr, "cannot open %s\n",
                         annotate_path.c_str());
            return 2;
        }
        std::stringstream profile_text;
        profile_text << profile_file.rdbuf();
        totals = loadProfileTotals(profile_text.str());
    }

    for (Addr addr = program.base(); addr + 4 <= program.end();
         addr += 4) {
        const u32 word = program.wordAt(addr);
        if (hex) {
            std::printf("%08x\n", word);
        } else if (!annotate_path.empty()) {
            const auto it = totals.find(addr);
            if (it != totals.end())
                std::printf("%10llu  0x%08x  %08x  %s\n",
                            static_cast<unsigned long long>(it->second),
                            addr, word, disassemble(word, addr).c_str());
            else
                std::printf("%10s  0x%08x  %08x  %s\n", ".", addr, word,
                            disassemble(word, addr).c_str());
        } else {
            std::printf("0x%08x  %08x  %s\n", addr, word,
                        disassemble(word, addr).c_str());
        }
    }
    return 0;
}
