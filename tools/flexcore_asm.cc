/**
 * @file
 * flexcore-asm: assemble a SPARC-subset .s file and emit the image.
 *
 *   flexcore-asm prog.s                  # listing (addr, word, disasm)
 *   flexcore-asm --hex prog.s            # one hex word per line
 *   flexcore-asm --symbols prog.s        # symbol table
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "assembler/assembler.h"
#include "common/cliopts.h"
#include "extensions/registry.h"
#include "isa/disasm.h"

using namespace flexcore;

int
main(int argc, char **argv)
{
    bool hex = false;
    bool symbols = false;
    bool list_monitors = false;
    std::string path;

    cli::Parser parser("flexcore-asm",
                       "assemble a SPARC-subset program");
    parser.flag("--hex", &hex, "emit one hex word per line");
    parser.flag("--symbols", &symbols, "emit the symbol table");
    parser.flag("--list-monitors", &list_monitors,
                "list every registered monitoring extension and exit");
    parser.positional("program.s", &path, /*required=*/false);
    parser.parseOrExit(argc, argv);

    if (list_monitors) {
        std::fputs(listMonitorsText().c_str(), stdout);
        return 0;
    }
    if (path.empty()) {
        std::fprintf(stderr, "missing program.s\n%s\n",
                     parser.usageLine().c_str());
        return 2;
    }

    std::ifstream file(path);
    if (!file) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 2;
    }
    std::stringstream source;
    source << file.rdbuf();

    Assembler assembler;
    Program program;
    if (!assembler.assemble(source.str(), &program)) {
        std::fprintf(stderr, "%s: assembly failed\n%s", path.c_str(),
                     assembler.errorText().c_str());
        return 1;
    }

    if (symbols) {
        for (const auto &[name, value] : program.symbols())
            std::printf("0x%08x %s\n", value, name.c_str());
        return 0;
    }

    for (Addr addr = program.base(); addr + 4 <= program.end();
         addr += 4) {
        const u32 word = program.wordAt(addr);
        if (hex) {
            std::printf("%08x\n", word);
        } else {
            std::printf("0x%08x  %08x  %s\n", addr, word,
                        disassemble(word, addr).c_str());
        }
    }
    return 0;
}
