/**
 * @file
 * flexcore-sweep: run a design-space campaign from the command line.
 * The same campaign engine serves the bench binaries and the tests;
 * this tool exposes it for ad-hoc exploration and for the determinism
 * acceptance check (identical JSON for any --jobs value).
 *
 *   flexcore-sweep                                # Table IV grid
 *   flexcore-sweep --jobs 8 --out results.json
 *   flexcore-sweep --grid fifo --scale test
 *   flexcore-sweep --grid cache --jobs 1 --out serial.json
 *   flexcore-sweep --stat core.cycles --stat bus.busy_cycles
 */

#include <chrono>
#include <cstdio>
#include <string>

#include <unistd.h>

#include "common/cliopts.h"
#include "common/log.h"
#include "common/outputspec.h"
#include "common/threadpool.h"
#include "extensions/registry.h"
#include "sim/campaign.h"

using namespace flexcore;

namespace {

SweepSpec
makeGrid(const std::string &grid, WorkloadScale scale)
{
    SweepSpec spec;
    spec.name = grid;
    spec.workloads = benchmarkSuite(scale);
    if (grid == "table4") {
        // Table IV: every paper-grid extension as ASIC (1X) and on the
        // fabric at 0.5X and 0.25X, plus the shared baseline.
        spec.monitors = ExtensionRegistry::instance().paperGrid();
        spec.modes = {ImplMode::kBaseline, ImplMode::kAsic,
                      ImplMode::kFlexFabric};
        spec.flex_periods = {2, 4};
    } else if (grid == "fifo") {
        // Figure 5: forward-FIFO depth sweep at the synthesis-derived
        // fabric clocks.
        spec.monitors = ExtensionRegistry::instance().paperGrid();
        spec.modes = {ImplMode::kBaseline, ImplMode::kFlexFabric};
        spec.fifo_depths = {4, 8, 16, 32, 64, 128, 256};
    } else if (grid == "cache") {
        // D-cache design-space study around the paper's 32 KB point.
        spec.monitors = {MonitorKind::kDift};
        spec.modes = {ImplMode::kBaseline, ImplMode::kFlexFabric};
        spec.dcache_bytes = {8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024};
    } else if (grid == "cores") {
        // Table IV-style scaling study: DIFT overhead vs core count at
        // fixed fabric bandwidth (one shared fabric regardless of N).
        spec.monitors = {MonitorKind::kDift};
        spec.modes = {ImplMode::kBaseline, ImplMode::kFlexFabric};
        spec.core_counts = {1, 2, 4};
        spec.base.fabric_sharing = FabricSharing::kShared;
    } else {
        FLEX_FATAL("unknown grid '", grid,
                   "' (expected table4, fifo, cache, or cores)");
    }
    return spec;
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string grid = "table4";
    WorkloadScale scale = WorkloadScale::kFull;
    CampaignOptions options;
    options.progress = isatty(STDERR_FILENO);
    std::string out = "sweep.json";
    bool no_progress = false;
    u32 jobs_opt = 0;
    OutputSpec ospec;

    cli::Parser parser("flexcore-sweep",
                       "run a design-space campaign");
    parser.choice("--grid", {"table4", "fifo", "cache", "cores"},
                  [&](size_t i) {
                      static const char *const names[] = {"table4",
                                                          "fifo",
                                                          "cache",
                                                          "cores"};
                      grid = names[i];
                  },
                  "sweep grid (default table4)");
    parser.choice("--scale", {"full", "test"},
                  [&](size_t i) {
                      scale = i == 0 ? WorkloadScale::kFull
                                     : WorkloadScale::kTest;
                  },
                  "workload input size (default full)");
    parser.option("--jobs", &jobs_opt, "N",
                  "worker threads (default: all hardware threads)");
    parser.option("--out", &out, "FILE",
                  "write merged JSON (default sweep.json, - = stdout)");
    parser.list("--stat", &options.stat_paths, "PATH",
                "embed this dotted counter path (e.g. core.cycles) in "
                "every result row; repeatable");
    parser.flag("--no-progress", &no_progress,
                "disable the live progress line");
    ospec.attach(&parser,
                 kSpecExecMode | kSpecSampling | kSpecWatchdog |
                     kSpecMaxCycles | kSpecProfileEmbed |
                     kSpecListMonitors | kSpecCores);
    parser.parseOrExit(argc, argv);

    if (ospec.handledListMonitors())
        return 0;

    options.jobs = jobs_opt;
    if (no_progress)
        options.progress = false;
    options.label = grid;
    if (ospec.profileRequested())
        options.profile_top = ospec.effectiveProfileTop();

    SweepSpec spec = makeGrid(grid, scale);
    if (!ospec.apply(&spec.base, "flexcore-sweep"))
        return 2;
    // --cores pins the core-count axis (the "cores" grid sweeps it);
    // --fabric-sharing already landed on spec.base via apply().
    if (ospec.cores != 1)
        spec.core_counts = {ospec.cores};
    if (ConfigError error = SystemConfig(spec.base).finalize()) {
        std::fprintf(stderr, "flexcore-sweep: %s\n",
                     error.message.c_str());
        return 2;
    }
    const auto jobs = expandSweep(spec);
    std::fprintf(stderr, "[%s] %zu jobs on %u threads\n", grid.c_str(),
                 jobs.size(),
                 options.jobs ? options.jobs
                              : ThreadPool::defaultThreadCount());

    const auto start = std::chrono::steady_clock::now();
    const auto results = runCampaign(jobs, options);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    writeCampaignJson(out, grid, results);
    std::fprintf(stderr, "[%s] %zu results -> %s in %.2fs\n",
                 grid.c_str(), results.size(), out.c_str(), seconds);
    return 0;
}
