/**
 * @file
 * flexcore-faultcov: detection-coverage campaigns. Seeded random fault
 * trials swept over {monitor} x {workload} x {fault model}, each run
 * classified (detected / benign / SDC / core trap / hang) and
 * aggregated into a per-cell coverage table with detection-latency
 * histograms. Deterministic: the JSON output is byte-identical for any
 * --jobs count and with fast-forwarding on or off.
 *
 *   flexcore-faultcov                                # default grid
 *   flexcore-faultcov --monitors sec --models reg --trials 50
 *   flexcore-faultcov --workloads sha --jobs 8 --out cov.json
 *   flexcore-faultcov --seed 7 --require-detections
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/cliopts.h"
#include "common/ioutil.h"
#include "common/log.h"
#include "common/outputspec.h"
#include "common/threadpool.h"
#include "core/profile.h"
#include "extensions/registry.h"
#include "faults/coverage.h"
#include "sim/sim_request.h"

using namespace flexcore;

namespace {

std::vector<std::string>
splitCommas(const std::string &text)
{
    std::vector<std::string> parts;
    size_t from = 0;
    while (from <= text.size()) {
        const size_t comma = text.find(',', from);
        const size_t to = comma == std::string::npos ? text.size() : comma;
        if (to > from)
            parts.push_back(text.substr(from, to - from));
        if (comma == std::string::npos)
            break;
        from = comma + 1;
    }
    return parts;
}

MonitorKind
parseMonitor(const std::string &name)
{
    MonitorKind kind;
    if (!parseMonitorKind(name, &kind) || kind == MonitorKind::kNone) {
        FLEX_FATAL("unknown monitor '", name, "' (expected one of ",
                   knownMonitorNames(), "; see --list-monitors)");
    }
    return kind;
}

/** The default campaign grid: the paper's extension set. */
std::string
defaultMonitorList()
{
    std::string list;
    for (MonitorKind kind : ExtensionRegistry::instance().paperGrid()) {
        if (!list.empty())
            list += ",";
        list += monitorKindName(kind);
    }
    return list;
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string monitors = defaultMonitorList();
    std::string workloads = "sha,basicmath";
    std::string models = "reg,shadow,mem,meta";
    WorkloadScale scale = WorkloadScale::kTest;
    std::string out;
    CampaignOptions options;
    options.progress = isatty(STDERR_FILENO);
    bool no_progress = false;
    bool require_detections = false;
    u32 jobs_opt = 0;
    OutputSpec ospec;
    ospec.watchdog_commits = 50'000;

    FaultCovSpec spec;
    spec.base.mode = ImplMode::kFlexFabric;

    cli::Parser parser("flexcore-faultcov",
                       "run a fault-injection detection-coverage "
                       "campaign");
    parser.option("--monitors", &monitors, "LIST",
                  "comma-separated monitors (default " + monitors + ")");
    parser.option("--workloads", &workloads, "LIST",
                  "comma-separated workloads (default sha,basicmath)");
    parser.option("--models", &models, "LIST",
                  "comma-separated fault models: reg, shadow, mem, "
                  "meta, ffifo, sb (default reg,shadow,mem,meta)");
    parser.option("--trials", &spec.trials, "N",
                  "trials per cell (default 20)");
    parser.option("--seed", &spec.seed, "N",
                  "campaign seed (default 1)");
    parser.choice("--scale", {"test", "full"},
                  [&](size_t i) {
                      scale = i == 0 ? WorkloadScale::kTest
                                     : WorkloadScale::kFull;
                  },
                  "workload input size (default test)");
    parser.option("--jobs", &jobs_opt, "N",
                  "worker threads (default: all hardware threads)");
    parser.option("--out", &out, "FILE",
                  "write the coverage JSON to FILE (default stdout; "
                  "- also means stdout)");
    parser.flag("--require-detections", &require_detections,
                "exit 3 unless every monitor detected at least one "
                "fault (CI smoke gate)");
    parser.flag("--no-progress", &no_progress,
                "disable the live progress line");
    ospec.attach(&parser,
                 kSpecExecMode | kSpecWatchdog | kSpecProfileFile |
                     kSpecFastForward | kSpecListMonitors | kSpecCores);
    parser.footer(
        "The coverage JSON goes to stdout (or --out FILE); the summary\n"
        "table and progress go to stderr. Output bytes are identical\n"
        "for any --jobs value and with or without fast-forwarding.\n");
    parser.parseOrExit(argc, argv);

    if (ospec.handledListMonitors())
        return 0;

    options.jobs = jobs_opt;
    if (no_progress)
        options.progress = false;
    options.label = "faultcov";
    if (!ospec.apply(&spec.base, "flexcore-faultcov"))
        return 2;

    for (const std::string &name : splitCommas(monitors))
        spec.monitors.push_back(parseMonitor(name));
    for (const std::string &name : splitCommas(models)) {
        FaultKind kind;
        if (!parseFaultKind(name, &kind)) {
            FLEX_FATAL("unknown fault model '", name,
                       "' (expected reg, shadow, mem, meta, ffifo, "
                       "or sb)");
        }
        spec.models.push_back(kind);
    }
    const std::vector<Workload> suite = benchmarkSuite(scale);
    for (const std::string &name : splitCommas(workloads)) {
        bool found = false;
        for (const Workload &workload : suite) {
            if (workload.name == name) {
                spec.workloads.push_back(workload);
                found = true;
                break;
            }
        }
        if (!found) {
            std::string known;
            for (const Workload &workload : suite) {
                if (!known.empty())
                    known += ", ";
                known += workload.name;
            }
            FLEX_FATAL("unknown workload '", name, "' (expected one of ",
                       known, ")");
        }
    }

    std::fprintf(stderr,
                 "[faultcov] %zu monitors x %zu workloads x %zu models "
                 "x %u trials on %u threads\n",
                 spec.monitors.size(), spec.workloads.size(),
                 spec.models.size(), spec.trials,
                 options.jobs ? options.jobs
                              : ThreadPool::defaultThreadCount());

    const auto start = std::chrono::steady_clock::now();
    const FaultCovResult result = runFaultCoverage(spec, options);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    // The document ends in a newline already, so the shared writer
    // keeps the bytes identical; "-" (or no --out at all) is stdout.
    writeTextOrStdout(out.empty() ? "-" : out, faultCovJson(spec, result));

    // Profile the *golden* run of each cell: the fault-free baseline a
    // trial's divergence is judged against, and the natural place to
    // ask "where does this monitored workload spend its cycles".
    if (!ospec.profile_json_path.empty()) {
        std::string profiles = "{";
        bool first = true;
        for (MonitorKind monitor : spec.monitors) {
            for (const Workload &workload : spec.workloads) {
                SystemConfig config = spec.base;
                config.monitor = monitor;
                const SimOutcome golden =
                    SimRequest(std::move(config))
                        .workload(workload)
                        .profileJson(ospec.effectiveProfileTop())
                        .run();
                if (!first)
                    profiles += ", ";
                first = false;
                profiles += "\"";
                profiles += monitorKindName(monitor);
                profiles += "/" + workload.name + "\": ";
                profiles += golden.profile_json;
            }
        }
        profiles += "}";
        writeTextOrStdout(ospec.profile_json_path, profiles);
    }

    std::fputs(faultCovSummary(result).c_str(), stderr);
    std::fprintf(stderr, "[faultcov] %zu runs in %.2fs%s%s\n",
                 result.runs.size(), seconds,
                 out.empty() ? "" : " -> ", out.c_str());

    if (require_detections) {
        bool all_detect = true;
        for (MonitorKind monitor : spec.monitors) {
            u64 detected = 0;
            for (const FaultCell &cell : result.cells) {
                if (cell.monitor == monitor)
                    detected += cell.outcomes(FaultOutcome::kDetected);
            }
            if (detected == 0) {
                std::fprintf(stderr,
                             "[faultcov] FAIL: monitor %s detected no "
                             "faults\n",
                             std::string(monitorKindName(monitor))
                                 .c_str());
                all_detect = false;
            }
        }
        if (!all_detect)
            return 3;
    }
    return 0;
}
