/**
 * @file
 * flexcore-chaos: a deterministic network-chaos client for
 * flexcore-serve. Each client derives its own xorshift64* stream from
 * a stable key (fnv1a64("chaos/SEED/CLIENT"), the campaign runner's
 * seeding idiom), so a given --seed replays the exact same byte-level
 * attack sequence every run — a failure found in CI reproduces on a
 * laptop with the same flags.
 *
 *   flexcore-chaos --connect unix:s.sock --seed 7 --clients 4 \
 *                  --attacks 50
 *
 * The repertoire, one fresh connection per attack:
 *   - truncated length prefix (1-3 bytes, then disconnect)
 *   - garbage length prefix (4 random bytes — usually an absurd
 *     claimed size the server must reject without allocating)
 *   - mid-frame disconnect (honest prefix, partial payload, hangup)
 *   - slow-loris (a valid frame dribbled one byte at a time)
 *   - corrupted envelope (valid JSON with random bytes flipped)
 *   - framed garbage (honest prefix, random payload bytes)
 *
 * The tool never asserts on what the server answers — a typed error
 * frame, a dropped connection, and a timeout are all acceptable. What
 * matters is measured elsewhere: the acceptance gate (scripts/check.sh,
 * tests/CMakeLists.txt tool.serve.chaos) runs chaos clients
 * concurrently with a well-behaved client and requires that client's
 * served stats to stay byte-identical to a local run, and the server
 * to drain cleanly to exit 0. Chaos must be invisible to correct
 * traffic; this tool only exits non-zero if it could not run the
 * campaign at all (e.g. the server was never reachable).
 */

#include <sys/socket.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/cliopts.h"
#include "common/netio.h"
#include "common/rng.h"
#include "sim/sim_response.h"

using namespace flexcore;

namespace {

constexpr int kConnectAttempts = 30;
constexpr u32 kBackoffBaseMs = 5;
constexpr u32 kBackoffMaxMs = 500;
/** Bound on waiting for a reply the server may legitimately not send. */
constexpr int kReplyTimeoutMs = 2000;

struct ChaosTally
{
    u64 attacks = 0;
    u64 replies = 0;         //!< typed error frames the server sent back
    u64 connect_failures = 0;
};

/** Raw bytes (no framing). Best effort: chaos writes may be cut short
 * by the server dropping us mid-attack, which is fine. */
void
sendRaw(int fd, const std::string &bytes)
{
    size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n = ::send(fd, bytes.data() + off,
                                 bytes.size() - off, MSG_NOSIGNAL);
        if (n <= 0)
            return;
        off += static_cast<size_t>(n);
    }
}

std::string
framePrefix(u32 size)
{
    std::string out(4, '\0');
    out[0] = static_cast<char>(size);
    out[1] = static_cast<char>(size >> 8);
    out[2] = static_cast<char>(size >> 16);
    out[3] = static_cast<char>(size >> 24);
    return out;
}

std::string
randomBytes(Rng *rng, size_t count)
{
    std::string out(count, '\0');
    for (size_t i = 0; i < count; ++i)
        out[i] = static_cast<char>(rng->below(256));
    return out;
}

/** Drain one reply frame if the server sends one within the budget. */
bool
tryReadReply(int fd)
{
    std::string payload;
    std::string error;
    return netio::recvFrameLimited(fd, &payload, netio::kMaxFrameBytes,
                                   kReplyTimeoutMs, kReplyTimeoutMs,
                                   &error) == netio::RecvStatus::kFrame;
}

/** One attack on one fresh connection. Returns true if a reply frame
 * came back (server answered with a typed error). */
bool
attackOnce(int fd, Rng *rng)
{
    const std::string envelope = "{\"op\": \"ping\"}";
    switch (rng->below(6)) {
      case 0: {
        // Truncated length prefix: 1-3 bytes, then hangup.
        sendRaw(fd, framePrefix(static_cast<u32>(envelope.size()))
                        .substr(0, 1 + rng->below(3)));
        return false;
      }
      case 1: {
        // Garbage length prefix: 4 random bytes. Often claims a
        // gigantic frame — the server must reject without allocating.
        sendRaw(fd, randomBytes(rng, 4));
        return tryReadReply(fd);
      }
      case 2: {
        // Mid-frame disconnect: honest prefix, partial payload, gone.
        const u32 claimed = 16 + static_cast<u32>(rng->below(4096));
        sendRaw(fd, framePrefix(claimed));
        sendRaw(fd, randomBytes(rng, rng->below(claimed)));
        return false;
      }
      case 3: {
        // Slow-loris: a valid frame dribbled a byte at a time. The
        // server's --frame-timeout-ms decides how long to indulge us.
        const std::string frame =
            framePrefix(static_cast<u32>(envelope.size())) + envelope;
        for (char byte : frame) {
            sendRaw(fd, std::string(1, byte));
            std::this_thread::sleep_for(std::chrono::milliseconds(
                1 + rng->below(10)));
        }
        return tryReadReply(fd);
      }
      case 4: {
        // Corrupted envelope: flip random bytes in valid JSON.
        std::string bad = envelope;
        const u64 flips = 1 + rng->below(4);
        for (u64 i = 0; i < flips; ++i)
            bad[rng->below(bad.size())] =
                static_cast<char>(rng->below(256));
        netio::sendFrame(fd, bad);
        return tryReadReply(fd);
      }
      default: {
        // Framed garbage: honest prefix, random payload.
        netio::sendFrame(fd, randomBytes(rng, 8 + rng->below(256)));
        return tryReadReply(fd);
      }
    }
}

void
chaosClient(const netio::Endpoint &endpoint, u64 seed, unsigned index,
            u64 attacks, ChaosTally *tally)
{
    Rng rng(fnv1a64("chaos/" + std::to_string(seed) + "/" +
                    std::to_string(index)));
    for (u64 i = 0; i < attacks; ++i) {
        std::string error;
        const int fd = netio::connectWithBackoff(
            endpoint, kConnectAttempts, kBackoffBaseMs, kBackoffMaxMs,
            rng.next64(), nullptr, &error);
        if (fd < 0) {
            ++tally->connect_failures;
            continue;
        }
        ++tally->attacks;
        if (attackOnce(fd, &rng))
            ++tally->replies;
        netio::closeSocket(fd);
    }
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string connect = "unix:flexcore.sock";
    u64 seed = 1;
    u32 clients = 4;
    u64 attacks = 50;
    bool quiet = false;

    cli::Parser parser("flexcore-chaos",
                       "throw deterministic protocol chaos at a "
                       "flexcore-serve instance");
    parser.option("--connect", &connect, "ENDPOINT",
                  "server endpoint, unix:PATH or tcp:HOST:PORT "
                  "(default unix:flexcore.sock)");
    parser.option("--seed", &seed, "N",
                  "base seed; each client derives its stream from "
                  "fnv1a64(\"chaos/SEED/CLIENT\") so runs replay "
                  "byte-for-byte (default 1)");
    parser.option("--clients", &clients, "N",
                  "concurrent chaos clients (default 4)");
    parser.option("--attacks", &attacks, "N",
                  "attacks per client, one fresh connection each "
                  "(default 50)");
    parser.flag("--quiet", &quiet, "suppress the summary line");
    parser.footer(
        "Exit 0 = the campaign ran (whatever the server answered).\n"
        "The real assertions live in the acceptance gate: a\n"
        "well-behaved client running concurrently must see served\n"
        "stats byte-identical to a local run, and the server must\n"
        "drain to exit 0. See docs/serve.md.\n");
    parser.parseOrExit(argc, argv);

    netio::Endpoint endpoint;
    std::string error;
    if (!netio::parseEndpoint(connect, &endpoint, &error)) {
        std::fprintf(stderr, "flexcore-chaos: %s\n", error.c_str());
        return 2;
    }

    std::vector<ChaosTally> tallies(clients);
    std::vector<std::thread> threads;
    for (unsigned c = 0; c < clients; ++c)
        threads.emplace_back(chaosClient, std::cref(endpoint), seed, c,
                             attacks, &tallies[c]);
    for (std::thread &t : threads)
        t.join();

    ChaosTally total;
    for (const ChaosTally &t : tallies) {
        total.attacks += t.attacks;
        total.replies += t.replies;
        total.connect_failures += t.connect_failures;
    }
    if (!quiet) {
        std::fprintf(stderr,
                     "[flexcore-chaos] %llu attacks from %u clients "
                     "(seed %llu): %llu typed replies, %llu connect "
                     "failures\n",
                     static_cast<unsigned long long>(total.attacks),
                     clients, static_cast<unsigned long long>(seed),
                     static_cast<unsigned long long>(total.replies),
                     static_cast<unsigned long long>(
                         total.connect_failures));
    }
    // Unreachable server for every single attack = the campaign never
    // ran; anything else is a successful chaos run.
    return total.attacks == 0 ? 1 : 0;
}
