/** @file Functional memory tests (big-endian, sparse pages). */

#include "memory/memory.h"

#include <gtest/gtest.h>

namespace flexcore {
namespace {

TEST(Memory, ZeroInitialized)
{
    Memory mem;
    EXPECT_EQ(mem.read32(0x1000), 0u);
    EXPECT_EQ(mem.read8(0xdeadbee0), 0u);
    EXPECT_EQ(mem.allocatedPages(), 0u);   // reads do not allocate
}

TEST(Memory, BigEndianByteOrder)
{
    Memory mem;
    mem.write32(0x100, 0x11223344);
    EXPECT_EQ(mem.read8(0x100), 0x11);
    EXPECT_EQ(mem.read8(0x101), 0x22);
    EXPECT_EQ(mem.read8(0x102), 0x33);
    EXPECT_EQ(mem.read8(0x103), 0x44);
    EXPECT_EQ(mem.read16(0x100), 0x1122);
    EXPECT_EQ(mem.read16(0x102), 0x3344);
}

TEST(Memory, ByteWritesComposeWords)
{
    Memory mem;
    mem.write8(0x200, 0xde);
    mem.write8(0x201, 0xad);
    mem.write8(0x202, 0xbe);
    mem.write8(0x203, 0xef);
    EXPECT_EQ(mem.read32(0x200), 0xdeadbeefu);
}

TEST(Memory, HalfwordWrites)
{
    Memory mem;
    mem.write16(0x300, 0xcafe);
    mem.write16(0x302, 0xf00d);
    EXPECT_EQ(mem.read32(0x300), 0xcafef00du);
}

TEST(Memory, CrossPageBlockCopy)
{
    Memory mem;
    std::vector<u8> data(Memory::kPageSize + 64);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<u8>(i * 7);
    const Addr base = Memory::kPageSize - 32;
    mem.writeBlock(base, data.data(), static_cast<u32>(data.size()));
    std::vector<u8> out(data.size());
    mem.readBlock(base, out.data(), static_cast<u32>(out.size()));
    EXPECT_EQ(data, out);
    EXPECT_GE(mem.allocatedPages(), 2u);
}

TEST(Memory, SparseHighAddresses)
{
    Memory mem;
    mem.write32(0xfffffff0, 0x12345678);
    EXPECT_EQ(mem.read32(0xfffffff0), 0x12345678u);
    EXPECT_EQ(mem.allocatedPages(), 1u);
}

TEST(Memory, OverwriteSameWord)
{
    Memory mem;
    mem.write32(0x400, 1);
    mem.write32(0x400, 2);
    EXPECT_EQ(mem.read32(0x400), 2u);
}

using MemoryDeathTest = ::testing::Test;

TEST(MemoryDeathTest, UnalignedWordAccessPanics)
{
    Memory mem;
    EXPECT_DEATH(mem.read32(0x101), "unaligned");
    EXPECT_DEATH(mem.write32(0x102, 0), "unaligned");
    EXPECT_DEATH(mem.read16(0x101), "unaligned");
}

}  // namespace
}  // namespace flexcore
