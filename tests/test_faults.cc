/**
 * @file
 * Fault-injection engine tests: plan parsing/validation, exact trigger
 * semantics per injector, the no-commit watchdog, outcome
 * classification, and coverage-campaign determinism.
 */

#include "faults/coverage.h"

#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "faults/fault_plan.h"
#include "faults/injector.h"
#include "faults/outcome.h"
#include "sim/system.h"
#include "workloads/scenarios.h"
#include "workloads/workload.h"

namespace flexcore {
namespace {

/** Physical register backing @p arch_reg in the initial window. */
unsigned
physOfArch(unsigned arch_reg)
{
    SystemConfig config;
    System probe(config);
    return probe.core().regs().physIndex(arch_reg);
}

// ---------------------------------------------------------------- plans

TEST(FaultPlan, SpecParseFormatRoundTrip)
{
    FaultSpec spec;
    std::string error;
    ASSERT_TRUE(parseFaultSpec("reg@i1200:t17:b3", &spec, &error))
        << error;
    EXPECT_EQ(spec.kind, FaultKind::kRegFlip);
    EXPECT_EQ(spec.trigger, FaultTrigger::kCommit);
    EXPECT_EQ(spec.when, 1200u);
    EXPECT_EQ(spec.target, 17u);
    EXPECT_EQ(spec.bit, 3u);
    EXPECT_EQ(formatFaultSpec(spec), "reg@i1200:t17:b3");

    ASSERT_TRUE(parseFaultSpec("mem@c5000:t0x2040:b5", &spec, &error))
        << error;
    EXPECT_EQ(spec.kind, FaultKind::kMemFlip);
    EXPECT_EQ(spec.trigger, FaultTrigger::kCycle);
    EXPECT_EQ(spec.target, 0x2040u);

    ASSERT_TRUE(parseFaultSpec("ffifo@c900:t2:b12:fsrcv1", &spec,
                               &error))
        << error;
    EXPECT_EQ(spec.field, PacketField::kSrcv1);
    EXPECT_EQ(formatFaultSpec(spec), "ffifo@c900:t2:b12:fsrcv1");

    // Round trip through the formatter for every kind.
    for (const char *text :
         {"reg@i1:t1:b0", "shadow@c7:t100:b7", "mem@c9:t4096:b1",
          "meta@c9:t4096:b1", "ffifo@c2:t0:b31:fdest", "sb@c3:t1:b30"}) {
        ASSERT_TRUE(parseFaultSpec(text, &spec, &error)) << error;
        EXPECT_EQ(formatFaultSpec(spec), text);
    }
}

TEST(FaultPlan, SpecParseErrors)
{
    FaultSpec spec;
    std::string error;
    EXPECT_FALSE(parseFaultSpec("reg:t1:b0", &spec, &error));
    EXPECT_NE(error.find("no '@'"), std::string::npos);
    EXPECT_FALSE(parseFaultSpec("bogus@c1:t1:b0", &spec, &error));
    EXPECT_NE(error.find("unknown fault kind"), std::string::npos);
    EXPECT_FALSE(parseFaultSpec("reg@t1:b0", &spec, &error));
    EXPECT_FALSE(parseFaultSpec("reg@c1:t1:b32", &spec, &error));
    EXPECT_FALSE(parseFaultSpec("reg@c1:t1:b0:fres", &spec, &error));
    EXPECT_FALSE(parseFaultSpec("ffifo@c1:t1:b0:fbogus", &spec, &error));
}

TEST(FaultPlan, JsonRoundTrip)
{
    FaultPlan plan;
    std::string error;
    ASSERT_TRUE(parseFaultPlan(
        "reg@i1200:t17:b3, ffifo@c900:t2:b12:fsrcv1\n"
        "# a comment\n"
        "mem@c5000:t8256:b5   # trailing comment\n",
        &plan, &error))
        << error;
    ASSERT_EQ(plan.size(), 3u);
    EXPECT_EQ(plan.format(),
              "reg@i1200:t17:b3,ffifo@c900:t2:b12:fsrcv1,"
              "mem@c5000:t8256:b5");

    FaultPlan reparsed;
    ASSERT_TRUE(parseFaultPlan(faultPlanJson(plan), &reparsed, &error))
        << error;
    EXPECT_EQ(reparsed.format(), plan.format());
}

TEST(FaultPlan, JsonParseErrors)
{
    FaultPlan plan;
    std::string error;
    EXPECT_FALSE(parseFaultPlan("{\"bogus\": []}", &plan, &error));
    EXPECT_FALSE(parseFaultPlan(
        "{\"faults\": [{\"kind\": \"nope\"}]}", &plan, &error));
    EXPECT_FALSE(parseFaultPlan("{\"faults\": [{}]} trailing", &plan,
                                &error));
}

TEST(FaultPlan, Validation)
{
    FaultPlan plan;
    plan.specs.push_back({FaultKind::kRegFlip, FaultTrigger::kCycle, 0,
                          5, 1, PacketField::kRes});
    EXPECT_NE(validateFaultPlan(plan).find(">= 1"), std::string::npos);

    plan.specs = {{FaultKind::kRegFlip, FaultTrigger::kCycle, 1, 0, 1,
                   PacketField::kRes}};
    EXPECT_FALSE(validateFaultPlan(plan).empty());   // target 0

    plan.specs = {{FaultKind::kMemFlip, FaultTrigger::kCycle, 1, 8, 9,
                   PacketField::kRes}};
    EXPECT_FALSE(validateFaultPlan(plan).empty());   // bit > 7

    plan.specs = {{FaultKind::kMetaFlip, FaultTrigger::kCycle, 1, 0x1002,
                   1, PacketField::kRes}};
    EXPECT_FALSE(validateFaultPlan(plan).empty());   // unaligned

    plan.specs = {{FaultKind::kRegFlip, FaultTrigger::kCommit, 10, 17, 3,
                   PacketField::kRes}};
    EXPECT_TRUE(validateFaultPlan(plan).empty());
}

TEST(FaultPlan, FinalizeRejectsBadConfigs)
{
    SystemConfig config;
    config.faults.specs = {{FaultKind::kRegFlip, FaultTrigger::kCycle, 0,
                            5, 1, PacketField::kRes}};
    EXPECT_EQ(config.finalize().code, ConfigError::Code::kBadFaultPlan);

    SystemConfig wd;
    wd.max_cycles = 1000;
    wd.watchdog_commits = 1000;
    EXPECT_EQ(wd.finalize().code, ConfigError::Code::kBadWatchdog);

    SystemConfig zero;
    zero.max_cycles = 0;
    EXPECT_EQ(zero.finalize().code, ConfigError::Code::kBadCycleLimit);

    SystemConfig good;
    good.watchdog_commits = 50'000;
    good.faults.specs = {{FaultKind::kRegFlip, FaultTrigger::kCommit, 10,
                          17, 3, PacketField::kRes}};
    EXPECT_FALSE(good.finalize());
}

// ------------------------------------------------------------ injectors

TEST(FaultInjection, RegFlipAppliesAtExactCycle)
{
    const unsigned phys = 130;   // untouched by the test program
    SystemConfig config;
    std::string error;
    ASSERT_TRUE(parseFaultSpec(
        "reg@c100:t" + std::to_string(phys) + ":b3",
        &config.faults.specs.emplace_back(), &error))
        << error;
    System system(config);
    system.load(Assembler::assembleOrDie(R"(
        .org 0x1000
_start: ba _start
        nop
)"));
    while (system.cycles() < 100) {
        system.tick();
        ASSERT_EQ(system.core().regs().readPhys(phys),
                  system.cycles() > 100 ? 8u : 0u);
    }
    EXPECT_EQ(system.core().regs().readPhys(phys), 0u);
    system.tick();   // the tick at cycle 100 applies the fault
    EXPECT_EQ(system.core().regs().readPhys(phys), 8u);
    EXPECT_EQ(system.injector()->log().applied, 1u);
    EXPECT_EQ(system.injector()->log().first_cycle, Cycle{100});
}

TEST(FaultInjection, RegFlipAppliesAtExactCommitIndex)
{
    // %l1 doubles each commit; flipping bit 4 right after commit N
    // makes every later double carry the corruption, so the final
    // value pins down the injection index exactly.
    const unsigned phys = physOfArch(17);   // %l1
    const char *source = R"(
        .org 0x1000
_start: mov 1, %l1
        add %l1, %l1, %l1
        add %l1, %l1, %l1
        add %l1, %l1, %l1
        ta 0
        nop
)";
    const auto final_l1 = [&](u64 commit_index) {
        SystemConfig config;
        FaultSpec spec;
        spec.kind = FaultKind::kRegFlip;
        spec.trigger = FaultTrigger::kCommit;
        spec.when = commit_index;
        spec.target = phys;
        spec.bit = 4;
        config.faults.specs = {spec};
        System system(config);
        system.load(Assembler::assembleOrDie(source));
        const RunResult result = system.run();
        EXPECT_EQ(result.exit, RunResult::Exit::kExited);
        return system.core().regs().readPhys(phys);
    };
    // After commit 2 (%l1 == 2): 2^16=18 -> 36 -> 72.
    EXPECT_EQ(final_l1(2), 72u);
    // After commit 3 (%l1 == 4): 4^16=20 -> 40.
    EXPECT_EQ(final_l1(3), 40u);
}

TEST(FaultInjection, MemFlipExactCycleAndByte)
{
    SystemConfig config;
    std::string error;
    // 0x2000 is the .org 0x1000 program's data word below.
    ASSERT_TRUE(parseFaultSpec("mem@c60:t0x2001:b5",
                               &config.faults.specs.emplace_back(),
                               &error))
        << error;
    System system(config);
    system.load(Assembler::assembleOrDie(R"(
        .org 0x1000
_start: ba _start
        nop
        .org 0x2000
        .word 0
)"));
    while (system.cycles() < 60)
        system.tick();
    EXPECT_EQ(system.memory().read8(0x2001), 0u);
    system.tick();
    EXPECT_EQ(system.memory().read8(0x2001), 1u << 5);
    EXPECT_EQ(system.memory().read8(0x2000), 0u);   // only that byte
}

TEST(FaultInjection, MetaFlipReachesMonitorTags)
{
    SystemConfig config;
    config.monitor = MonitorKind::kUmc;
    config.mode = ImplMode::kFlexFabric;
    std::string error;
    // 0x300000 is far outside the loaded image, so its tag starts 0.
    ASSERT_TRUE(parseFaultSpec("meta@c10:t0x300000:b0",
                               &config.faults.specs.emplace_back(),
                               &error))
        << error;
    System system(config);
    system.load(Assembler::assembleOrDie(R"(
        .org 0x1000
_start: ba _start
        nop
)"));
    while (system.cycles() <= 10)
        system.tick();
    EXPECT_EQ(system.monitor()->memTags().read(0x300000), 1u);
    EXPECT_EQ(system.injector()->log().applied, 1u);
}

TEST(FaultInjection, SkippedWhenTargetAbsent)
{
    // An FFIFO flip in baseline mode (no interface) and a store-buffer
    // flip while the buffer is empty both count as skipped, never as
    // applied.
    SystemConfig config;
    std::string error;
    ASSERT_TRUE(parseFaultSpec("ffifo@c5:t0:b0:fres",
                               &config.faults.specs.emplace_back(),
                               &error))
        << error;
    ASSERT_TRUE(parseFaultSpec("sb@c5:t0:b0",
                               &config.faults.specs.emplace_back(),
                               &error))
        << error;
    System system(config);
    system.load(Assembler::assembleOrDie(R"(
        .org 0x1000
_start: ba _start
        nop
)"));
    while (system.cycles() <= 5)
        system.tick();
    EXPECT_EQ(system.injector()->log().applied, 0u);
    EXPECT_EQ(system.injector()->log().skipped, 2u);
}

// ------------------------------------------------------------- watchdog

/** SEC ignores cpops, so m.read never gets a BFIFO reply: a genuine
 * wedged-pipeline hang, the watchdog's target. */
const char *kHangingSource = R"(
        .org 0x1000
_start: mov 1, %l0
        add %l0, %l0, %l0
        m.read %o0, 0
        ta 0
        nop
)";

TEST(Watchdog, CatchesNoCommitHang)
{
    SystemConfig config;
    config.monitor = MonitorKind::kSec;
    config.mode = ImplMode::kFlexFabric;
    config.watchdog_commits = 5'000;
    System system(config);
    system.load(Assembler::assembleOrDie(kHangingSource));
    const RunResult result = system.run();
    EXPECT_EQ(result.exit, RunResult::Exit::kHang);
    EXPECT_NE(result.trap_reason.find("watchdog"), std::string::npos);
    // Cut short within the watchdog window, far below max_cycles.
    EXPECT_LT(result.cycles, Cycle{20'000});
    EXPECT_LT(result.cycles, config.max_cycles / 1000);
}

TEST(Watchdog, ByteIdenticalWithAndWithoutFastForward)
{
    const auto hang_cycles = [&](bool fast_forward) {
        SystemConfig config;
        config.monitor = MonitorKind::kSec;
        config.mode = ImplMode::kFlexFabric;
        config.watchdog_commits = 5'000;
        config.fast_forward = fast_forward;
        System system(config);
        system.load(Assembler::assembleOrDie(kHangingSource));
        const RunResult result = system.run();
        EXPECT_EQ(result.exit, RunResult::Exit::kHang);
        return result.cycles;
    };
    EXPECT_EQ(hang_cycles(true), hang_cycles(false));
}

TEST(Watchdog, OrthogonalToMaxCycles)
{
    // A *committing* infinite loop makes progress every few cycles:
    // the watchdog must stay silent and the cycle limit must end the
    // run, exactly as without a watchdog.
    SystemConfig config;
    config.watchdog_commits = 1'000;
    config.max_cycles = 30'000;
    System system(config);
    system.load(Assembler::assembleOrDie(R"(
        .org 0x1000
_start: ba _start
        nop
)"));
    const RunResult result = system.run();
    EXPECT_EQ(result.exit, RunResult::Exit::kMaxCycles);
    EXPECT_EQ(result.cycles, Cycle{30'000});
}

// -------------------------------------------------- detection end to end

TEST(FaultDetection, SecDetectsRegisterFlip)
{
    // Flip a live loop register mid-run; SEC's residue check must trap
    // on its next use, and the classifier must label it detected.
    SystemConfig config;
    config.monitor = MonitorKind::kSec;
    config.mode = ImplMode::kFlexFabric;
    FaultSpec spec;
    spec.kind = FaultKind::kRegFlip;
    spec.trigger = FaultTrigger::kCommit;
    spec.when = 10'000;
    spec.target = physOfArch(17);   // %l1, read every iteration
    spec.bit = 2;
    config.faults.specs = {spec};

    const SimOutcome outcome =
        SimRequest(config).workload(scenarioSecWorkload()).run();
    EXPECT_EQ(outcome.result.exit, RunResult::Exit::kMonitorTrap);
    EXPECT_NE(outcome.result.trap_reason.find("residue"),
              std::string::npos);
    EXPECT_EQ(outcome.fault.outcome, FaultOutcome::kDetected);
    EXPECT_EQ(outcome.fault.applied, 1u);
    EXPECT_GE(outcome.fault.detection_latency, 0);
    // The fabric runs at a quarter of the core clock for SEC and is
    // six stages deep, so detection takes a bounded tail of cycles.
    EXPECT_LT(outcome.fault.detection_latency, 5'000);
}

TEST(FaultDetection, SecDetectsFfifoCorruption)
{
    // Corrupt the RES field of a queued commit packet: the checker
    // re-executes the instruction and must disagree.
    SystemConfig config;
    config.monitor = MonitorKind::kSec;
    config.mode = ImplMode::kFlexFabric;
    std::string error;
    // Several attempts in case a particular cycle finds the FIFO
    // empty; the run traps at the first one that lands.
    for (const char *text : {"ffifo@c2001:t0:b7:fres",
                             "ffifo@c2103:t0:b7:fres",
                             "ffifo@c2205:t0:b7:fres"}) {
        ASSERT_TRUE(parseFaultSpec(
            text, &config.faults.specs.emplace_back(), &error))
            << error;
    }
    const SimOutcome outcome =
        SimRequest(config).workload(scenarioSecWorkload()).run();
    EXPECT_EQ(outcome.result.exit, RunResult::Exit::kMonitorTrap);
    EXPECT_EQ(outcome.fault.outcome, FaultOutcome::kDetected);
    EXPECT_GE(outcome.fault.applied, 1u);
}

TEST(FaultDetection, BenignFlipClassifiedBenign)
{
    // A flip in a register the program never reads again must classify
    // as benign: clean exit, golden console.
    SystemConfig config;
    config.monitor = MonitorKind::kSec;
    config.mode = ImplMode::kFlexFabric;
    FaultSpec spec;
    spec.kind = FaultKind::kRegFlip;
    spec.trigger = FaultTrigger::kCycle;
    spec.when = 50;
    spec.target = 130;   // untouched physical register
    spec.bit = 0;
    config.faults.specs = {spec};
    const SimOutcome outcome =
        SimRequest(config).workload(scenarioSecWorkload()).run();
    EXPECT_EQ(outcome.result.exit, RunResult::Exit::kExited);
    EXPECT_EQ(outcome.fault.outcome, FaultOutcome::kBenign);
    EXPECT_TRUE(outcome.golden_diff.empty());
}

// --------------------------------------------------------- classification

TEST(FaultOutcomes, ClassifierMapsEveryExit)
{
    InjectionLog log;
    log.applied = 1;
    log.first_cycle = 100;
    const std::string golden = "ok\n";

    RunResult r;
    r.cycles = 450;
    r.exit = RunResult::Exit::kMonitorTrap;
    FaultReport rep = classifyFaultRun(r, log, &golden);
    EXPECT_EQ(rep.outcome, FaultOutcome::kDetected);
    EXPECT_EQ(rep.detection_latency, 350);

    r.exit = RunResult::Exit::kCoreTrap;
    EXPECT_EQ(classifyFaultRun(r, log, &golden).outcome,
              FaultOutcome::kCoreTrap);

    r.exit = RunResult::Exit::kHang;
    EXPECT_EQ(classifyFaultRun(r, log, &golden).outcome,
              FaultOutcome::kHang);
    r.exit = RunResult::Exit::kMaxCycles;
    EXPECT_EQ(classifyFaultRun(r, log, &golden).outcome,
              FaultOutcome::kHang);

    r.exit = RunResult::Exit::kExited;
    r.console = "ok\n";
    EXPECT_EQ(classifyFaultRun(r, log, &golden).outcome,
              FaultOutcome::kBenign);
    r.console = "not ok\n";
    EXPECT_EQ(classifyFaultRun(r, log, &golden).outcome,
              FaultOutcome::kSdc);
    // Without a golden reference, SDC is indistinguishable: benign.
    EXPECT_EQ(classifyFaultRun(r, log, nullptr).outcome,
              FaultOutcome::kBenign);
}

TEST(FaultOutcomes, BoundedDiff)
{
    EXPECT_EQ(boundedDiff("same", "same"), "");
    const std::string d = boundedDiff("hello world", "hellO world");
    EXPECT_NE(d.find("byte 4"), std::string::npos);
    EXPECT_NE(d.find("\"o world\""), std::string::npos);
    EXPECT_NE(d.find("\"O world\""), std::string::npos);

    // Truncation to the requested excerpt size.
    const std::string long_a(300, 'a');
    std::string long_b = long_a;
    long_b[10] = 'x';
    const std::string t = boundedDiff(long_a, long_b, 8);
    EXPECT_NE(t.find("byte 10"), std::string::npos);
    EXPECT_NE(t.find("..."), std::string::npos);
    EXPECT_LT(t.size(), 150u);

    // Length-only difference: first diff at the shorter length.
    const std::string l = boundedDiff("abc", "abcdef");
    EXPECT_NE(l.find("byte 3"), std::string::npos);
    EXPECT_NE(l.find("expected 3 bytes, got 6"), std::string::npos);

    // Non-printables are escaped.
    EXPECT_NE(boundedDiff("a\n", "a\t").find("\\n"), std::string::npos);
}

// ------------------------------------------------- campaign determinism

TEST(FaultCoverage, JsonByteIdenticalAcrossJobsAndFastForward)
{
    FaultCovSpec spec;
    spec.name = "determinism";
    spec.workloads = {makeSha(WorkloadScale::kTest)};
    spec.monitors = {MonitorKind::kUmc, MonitorKind::kSec};
    spec.models = {FaultKind::kRegFlip, FaultKind::kFfifoFlip};
    spec.trials = 3;
    spec.seed = 42;
    spec.base.mode = ImplMode::kFlexFabric;
    spec.base.watchdog_commits = 50'000;

    CampaignOptions serial;
    serial.jobs = 1;
    CampaignOptions parallel;
    parallel.jobs = 4;

    const std::string json_serial =
        faultCovJson(spec, runFaultCoverage(spec, serial));
    const std::string json_parallel =
        faultCovJson(spec, runFaultCoverage(spec, parallel));
    EXPECT_EQ(json_serial, json_parallel);

    FaultCovSpec no_ff = spec;
    no_ff.base.fast_forward = false;
    const std::string json_no_ff =
        faultCovJson(no_ff, runFaultCoverage(no_ff, parallel));
    EXPECT_EQ(json_serial, json_no_ff);

    // The table is not degenerate: every cell ran all trials and at
    // least one fault somewhere was detected.
    const FaultCovResult result = runFaultCoverage(spec, parallel);
    ASSERT_EQ(result.cells.size(), 4u);
    u64 detected = 0;
    for (const FaultCell &cell : result.cells) {
        EXPECT_EQ(cell.trials, 3u);
        detected += cell.outcomes(FaultOutcome::kDetected);
    }
    EXPECT_GT(detected, 0u);
}

TEST(FaultCoverage, SeedChangesTheSchedule)
{
    FaultCovSpec spec;
    spec.workloads = {makeSha(WorkloadScale::kTest)};
    spec.monitors = {MonitorKind::kSec};
    spec.models = {FaultKind::kRegFlip};
    spec.trials = 3;
    spec.base.mode = ImplMode::kFlexFabric;
    spec.base.watchdog_commits = 50'000;

    CampaignOptions opts;
    opts.jobs = 2;
    spec.seed = 1;
    const FaultCovResult a = runFaultCoverage(spec, opts);
    spec.seed = 2;
    const FaultCovResult b = runFaultCoverage(spec, opts);
    ASSERT_EQ(a.runs.size(), b.runs.size());
    bool any_difference = false;
    for (size_t i = 0; i < a.runs.size(); ++i) {
        if (formatFaultSpec(a.runs[i].spec) !=
            formatFaultSpec(b.runs[i].spec))
            any_difference = true;
    }
    EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace flexcore
