/**
 * @file
 * Golden commit-trace regression tests: every scenarios.h program runs
 * under the baseline and under UMC/DIFT/BC on the fabric, and the full
 * commit-stage trace (cycle, pc, instruction word) plus the
 * architectural outcome is folded into one FNV-1a hash per run. The
 * hashes are pinned in tests/data/trace_golden.txt, so any silent
 * timing or architectural drift — an off-by-one stall, a changed trap
 * cycle, a reordered commit — fails loudly here even when the
 * functional tests still pass.
 *
 * After an *intentional* timing/ISA change, regenerate the goldens:
 *
 *   UPDATE_TRACE_GOLDEN=1 ./build/tests/test_trace_golden
 *
 * and review the diff of tests/data/trace_golden.txt like any other
 * code change.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "isa/encoding.h"
#include "sim/system.h"
#include "workloads/scenarios.h"

namespace flexcore {
namespace {

const char kGoldenPath[] = FLEXCORE_TEST_DATA_DIR "/trace_golden.txt";

/** Incremental FNV-1a 64. */
class TraceHash
{
  public:
    void
    addBytes(const void *data, size_t size)
    {
        const u8 *bytes = static_cast<const u8 *>(data);
        for (size_t i = 0; i < size; ++i) {
            hash_ ^= bytes[i];
            hash_ *= 0x100000001b3ull;
        }
    }

    template <typename T>
    void
    add(T value)
    {
        addBytes(&value, sizeof(value));
    }

    u64 value() const { return hash_; }

  private:
    u64 hash_ = 0xcbf29ce484222325ull;
};

/** Run one scenario under one configuration and hash its trace. */
u64
traceHash(const Workload &scenario, MonitorKind monitor)
{
    SystemConfig config;
    config.monitor = monitor;
    config.mode = monitor == MonitorKind::kNone ? ImplMode::kBaseline
                                                : ImplMode::kFlexFabric;
    // The scenarios are tiny; a tight limit keeps a regression that
    // livelocks from hanging the suite.
    config.max_cycles = 2'000'000;

    System system(config);
    system.load(Assembler::assembleOrDie(scenario.source));

    TraceHash hash;
    system.core().setTracer(
        [&hash](Cycle cycle, Addr pc, const Instruction &inst) {
            hash.add<u64>(cycle);
            hash.add<u32>(pc);
            hash.add<u32>(encode(inst));
        });
    const RunResult result = system.run();

    hash.add<u8>(static_cast<u8>(result.exit));
    hash.add<u32>(result.exit_code);
    hash.add<u64>(result.cycles);
    hash.add<u64>(result.instructions);
    hash.addBytes(result.console.data(), result.console.size());
    return hash.value();
}

/** The (scenario, monitor) matrix covered by the golden file. */
std::map<std::string, u64>
computeHashes()
{
    const Workload scenarios[] = {
        scenarioDiftAttack(), scenarioDiftBenign(), scenarioUmcBug(),
        scenarioUmcClean(),   scenarioBcOverflow(), scenarioBcClean(),
        scenarioSecWorkload(),
    };
    const struct
    {
        MonitorKind kind;
        const char *name;
    } monitors[] = {
        {MonitorKind::kNone, "baseline"},
        {MonitorKind::kUmc, "umc"},
        {MonitorKind::kDift, "dift"},
        {MonitorKind::kBc, "bc"},
    };

    std::map<std::string, u64> hashes;
    for (const Workload &scenario : scenarios) {
        for (const auto &monitor : monitors) {
            const std::string key =
                scenario.name + "/" + monitor.name;
            hashes[key] = traceHash(scenario, monitor.kind);
        }
    }
    return hashes;
}

std::map<std::string, u64>
loadGolden()
{
    std::map<std::string, u64> golden;
    std::ifstream file(kGoldenPath);
    std::string key, hex;
    while (file >> key >> hex)
        golden[key] = std::strtoull(hex.c_str(), nullptr, 16);
    return golden;
}

TEST(TraceGolden, CommitTracesMatchGoldenHashes)
{
    const auto hashes = computeHashes();

    if (std::getenv("UPDATE_TRACE_GOLDEN")) {
        std::ofstream file(kGoldenPath, std::ios::trunc);
        ASSERT_TRUE(file.is_open()) << "cannot write " << kGoldenPath;
        for (const auto &[key, hash] : hashes) {
            char line[128];
            std::snprintf(line, sizeof(line), "%s %016llx\n",
                          key.c_str(),
                          static_cast<unsigned long long>(hash));
            file << line;
        }
        GTEST_SKIP() << "regenerated " << kGoldenPath;
    }

    const auto golden = loadGolden();
    ASSERT_FALSE(golden.empty())
        << "missing or empty " << kGoldenPath
        << " — run UPDATE_TRACE_GOLDEN=1 to generate it";

    for (const auto &[key, hash] : hashes) {
        const auto it = golden.find(key);
        ASSERT_NE(it, golden.end())
            << key << " has no golden hash; regenerate the file";
        EXPECT_EQ(hash, it->second)
            << key << ": commit trace drifted from the golden run. If "
            << "the timing/ISA change is intentional, regenerate with "
            << "UPDATE_TRACE_GOLDEN=1 and review the diff.";
    }
    // No stale entries for runs that no longer exist.
    for (const auto &[key, hash] : golden)
        EXPECT_TRUE(hashes.count(key)) << "stale golden entry " << key;
}

/** The hash itself must be stable run-to-run (same process). */
TEST(TraceGolden, HashIsDeterministic)
{
    const Workload scenario = scenarioUmcClean();
    EXPECT_EQ(traceHash(scenario, MonitorKind::kUmc),
              traceHash(scenario, MonitorKind::kUmc));
}

}  // namespace
}  // namespace flexcore
