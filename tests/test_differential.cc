/**
 * @file
 * Randomized differential testing of the whole language pipeline:
 * generate random straight-line ALU programs, run them through the
 * assembler + core, and compare the final register state against an
 * independent interpreter written directly in this test (separate
 * code path from both the Alu class and the core). Any disagreement in
 * encode/decode/assemble/execute shows up as a register mismatch.
 *
 * The second half is the exec-mode differential harness: threaded
 * superblock dispatch (SystemConfig::exec_mode = kThreaded) must be an
 * invisible host-side optimization. The {baseline,umc,dift,bc,sec} x
 * {sha,basicmath} grid asserts byte-identical commit traces, monitor
 * verdicts, and stats JSON between the interpreter and threaded
 * dispatch, and a seeded fuzz compares final architectural + shadow
 * state (regTags/memTags) per random program. Debug builds
 * additionally lockstep-assert every superblock instruction inside
 * ThreadedEngine::burst (mirroring the fast-forward proof).
 */

#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "common/rng.h"
#include "isa/encoding.h"
#include "sim/sim_request.h"
#include "sim/system.h"
#include "workloads/workload.h"

namespace flexcore {
namespace {

/** The test's own reference semantics (intentionally re-derived). */
u32
reference(Op op, u32 a, u32 b)
{
    switch (op) {
      case Op::kAdd: return a + b;
      case Op::kSub: return a - b;
      case Op::kAnd: return a & b;
      case Op::kOr: return a | b;
      case Op::kXor: return a ^ b;
      case Op::kAndn: return a & ~b;
      case Op::kOrn: return a | ~b;
      case Op::kXnor: return ~(a ^ b);
      case Op::kSll: return a << (b & 31);
      case Op::kSrl: return a >> (b & 31);
      case Op::kSra:
        return static_cast<u32>(static_cast<s32>(a) >> (b & 31));
      case Op::kUmul:
        return static_cast<u32>(static_cast<u64>(a) * b);
      default: return 0;
    }
}

struct GenOp
{
    Op op;
    const char *mnemonic;
};

const GenOp kGenOps[] = {
    {Op::kAdd, "add"},   {Op::kSub, "sub"},   {Op::kAnd, "and"},
    {Op::kOr, "or"},     {Op::kXor, "xor"},   {Op::kAndn, "andn"},
    {Op::kOrn, "orn"},   {Op::kXnor, "xnor"}, {Op::kSll, "sll"},
    {Op::kSrl, "srl"},   {Op::kSra, "sra"},   {Op::kUmul, "umul"},
};

/** Registers the generator uses: %l0-%l7 and %o0-%o3. */
const char *kRegs[] = {"%l0", "%l1", "%l2", "%l3", "%l4", "%l5",
                       "%l6", "%l7", "%o0", "%o1", "%o2", "%o3"};
constexpr unsigned kNumRegs = 12;

class DifferentialFuzz : public ::testing::TestWithParam<u64>
{
};

TEST_P(DifferentialFuzz, RandomStraightLineProgramsMatch)
{
    Rng rng(GetParam());
    u32 model[kNumRegs];

    std::string source = "        .org 0x1000\n_start:\n";
    // Seed every register with a random value via `set`.
    for (unsigned r = 0; r < kNumRegs; ++r) {
        model[r] = rng.next32();
        source += "        set 0x" ;
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%x", model[r]);
        source += buf;
        source += ", ";
        source += kRegs[r];
        source += "\n";
    }
    // Random ALU instructions (register and immediate forms).
    for (int i = 0; i < 150; ++i) {
        const GenOp &gen = kGenOps[rng.below(std::size(kGenOps))];
        const unsigned rd = rng.below(kNumRegs);
        const unsigned rs1 = rng.below(kNumRegs);
        std::string operand2;
        u32 b;
        if (rng.chance(0.3)) {
            const s32 imm = static_cast<s32>(rng.range(0, 8191)) - 4096;
            b = static_cast<u32>(imm);
            operand2 = std::to_string(imm);
        } else {
            const unsigned rs2 = rng.below(kNumRegs);
            b = model[rs2];
            operand2 = kRegs[rs2];
        }
        model[rd] = reference(gen.op, model[rs1], b);
        source += "        ";
        source += gen.mnemonic;
        source += " ";
        source += kRegs[rs1];
        source += ", " + operand2 + ", ";
        source += kRegs[rd];
        source += "\n";
    }
    source += "        ta 0\n        nop\n";

    SystemConfig config;
    System system(config);
    system.load(Assembler::assembleOrDie(source));
    const RunResult result = system.run();
    ASSERT_EQ(result.exit, RunResult::Exit::kExited);

    for (unsigned r = 0; r < kNumRegs; ++r) {
        unsigned arch = 0;
        ASSERT_TRUE(parseRegName(kRegs[r], &arch));
        EXPECT_EQ(system.core().regs().read(arch), model[r])
            << kRegs[r] << " after seed " << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         ::testing::Range<u64>(1, 21));

/** The same differential check under every monitor: monitoring must
 * never change architectural results. */
class MonitoredDifferential
    : public ::testing::TestWithParam<MonitorKind>
{
};

TEST_P(MonitoredDifferential, MonitoringIsTransparent)
{
    Rng rng(12345);
    std::string source = "        .org 0x1000\n_start:\n";
    u32 expected = 0;
    u32 model = 7;
    source += "        mov 7, %l0\n";
    for (int i = 0; i < 80; ++i) {
        const u32 imm = rng.below(4096);
        switch (rng.below(3)) {
          case 0:
            model += imm;
            source += "        add %l0, " + std::to_string(imm) +
                      ", %l0\n";
            break;
          case 1:
            model ^= imm;
            source += "        xor %l0, " + std::to_string(imm) +
                      ", %l0\n";
            break;
          default:
            model = model << 1;
            source += "        sll %l0, 1, %l0\n";
            break;
        }
    }
    expected = model;
    source += "        mov %l0, %o0\n        ta 2\n";
    source += "        mov 0, %o0\n        ta 0\n        nop\n";

    SystemConfig config;
    config.monitor = GetParam();
    config.mode = ImplMode::kFlexFabric;
    System system(config);
    system.load(Assembler::assembleOrDie(source));
    const RunResult result = system.run();
    ASSERT_EQ(result.exit, RunResult::Exit::kExited);
    EXPECT_EQ(result.console,
              std::to_string(static_cast<s32>(expected)));
}

INSTANTIATE_TEST_SUITE_P(
    AllMonitors, MonitoredDifferential,
    ::testing::Values(MonitorKind::kUmc, MonitorKind::kDift,
                      MonitorKind::kBc, MonitorKind::kSec,
                      MonitorKind::kProf, MonitorKind::kMemProt,
                      MonitorKind::kWatch, MonitorKind::kRefCount),
    [](const ::testing::TestParamInfo<MonitorKind> &info) {
        return std::string(monitorKindName(info.param));
    });

// ----------------------------------------------------- exec-mode grid

/** Everything the two execution modes must agree on, byte for byte. */
struct ExecObserved
{
    RunResult result;
    std::string stats_json;
    u64 trace_hash = 0;
    u64 forwarded = 0;
    u64 dropped = 0;
    u64 commit_stalls = 0;
};

ExecObserved
observeExec(const Workload &workload, MonitorKind monitor, ExecMode mode)
{
    SystemConfig config;
    config.monitor = monitor;
    config.mode = monitor == MonitorKind::kNone ? ImplMode::kBaseline
                                                : ImplMode::kFlexFabric;
    config.exec_mode = mode;

    u64 hash = 0xcbf29ce484222325ull;
    const auto mix = [&hash](u64 value) {
        for (unsigned i = 0; i < 8; ++i) {
            hash ^= (value >> (8 * i)) & 0xff;
            hash *= 0x100000001b3ull;
        }
    };

    ExecObserved obs;
    SimOutcome outcome =
        SimRequest(config)
            .workload(workload)
            .statsJson()
            .tracer([&](Cycle cycle, Addr pc, const Instruction &inst) {
                mix(cycle);
                mix(pc);
                mix(encode(inst));
            })
            .run();
    obs.result = std::move(outcome.result);
    obs.stats_json = std::move(outcome.stats_json);
    obs.trace_hash = hash;
    obs.forwarded = outcome.forwarded;
    obs.dropped = outcome.dropped;
    obs.commit_stalls = outcome.commit_stalls;
    return obs;
}

/**
 * The full paper-benchmark grid in both execution modes. Threaded
 * dispatch must reproduce the interpreter bit for bit: the commit
 * trace (cycle, pc, encoding of every committed instruction), the
 * RunResult, the forward/drop/stall counts at the interface, and the
 * entire stats tree as canonical JSON.
 */
class ExecModeDifferential
    : public ::testing::TestWithParam<
          std::tuple<const char *, MonitorKind>>
{
};

TEST_P(ExecModeDifferential, ThreadedMatchesInterpreterByteForByte)
{
    const auto [name, monitor] = GetParam();
    const Workload workload = std::string(name) == "sha"
                                  ? makeSha(WorkloadScale::kTest)
                                  : makeBasicmath(WorkloadScale::kTest);

    const ExecObserved interp =
        observeExec(workload, monitor, ExecMode::kInterp);
    const ExecObserved threaded =
        observeExec(workload, monitor, ExecMode::kThreaded);

    // The interpreter run is the golden reference; check it against
    // the workload's expected output first so a common-mode failure
    // cannot hide behind agreement between the two engines.
    EXPECT_EQ(interp.result.exit, RunResult::Exit::kExited);
    EXPECT_EQ(interp.result.console, workload.expected_console);

    EXPECT_EQ(interp.result.exit, threaded.result.exit);
    EXPECT_EQ(interp.result.exit_code, threaded.result.exit_code);
    EXPECT_EQ(interp.result.cycles, threaded.result.cycles);
    EXPECT_EQ(interp.result.instructions, threaded.result.instructions);
    EXPECT_EQ(interp.result.console, threaded.result.console);
    EXPECT_EQ(interp.result.trap_reason, threaded.result.trap_reason);
    EXPECT_EQ(interp.result.trap.pc, threaded.result.trap.pc);
    EXPECT_EQ(interp.forwarded, threaded.forwarded);
    EXPECT_EQ(interp.dropped, threaded.dropped);
    EXPECT_EQ(interp.commit_stalls, threaded.commit_stalls);
    EXPECT_EQ(interp.trace_hash, threaded.trace_hash);
    // The strongest check: every counter and formula in the whole
    // stats tree, byte for byte.
    EXPECT_EQ(interp.stats_json, threaded.stats_json);
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, ExecModeDifferential,
    ::testing::Combine(::testing::Values("sha", "basicmath"),
                       ::testing::Values(MonitorKind::kNone,
                                         MonitorKind::kUmc,
                                         MonitorKind::kDift,
                                         MonitorKind::kBc,
                                         MonitorKind::kSec)),
    [](const auto &info) {
        std::string name = std::get<0>(info.param);
        name += '_';
        const MonitorKind kind = std::get<1>(info.param);
        name += kind == MonitorKind::kNone
                    ? "baseline"
                    : std::string(monitorKindName(kind));
        return name;
    });

/**
 * A monitor trap must terminate identically in both modes: same
 * verdict, same trapping pc, same cycle count.
 */
TEST(ExecModeDifferential, MonitorTrapVerdictsMatch)
{
    // UMC: load from a word never stored -> "load of uninitialized"
    // trap. The store warms one address; the load hits another.
    const std::string source = R"(
        .org 0x1000
_start: set 0x20000, %l0
        set 0x1234, %l1
        st %l1, [%l0]
        ld [%l0+8], %o0
        ta 0
        nop
)";

    RunResult results[2];
    for (ExecMode mode : {ExecMode::kInterp, ExecMode::kThreaded}) {
        SystemConfig config;
        config.monitor = MonitorKind::kUmc;
        config.mode = ImplMode::kFlexFabric;
        config.exec_mode = mode;
        System system(config);
        system.load(Assembler::assembleOrDie(source));
        results[mode == ExecMode::kThreaded] = system.run();
    }
    EXPECT_EQ(results[0].exit, RunResult::Exit::kMonitorTrap);
    EXPECT_EQ(results[0].exit, results[1].exit);
    EXPECT_EQ(results[0].trap_reason, results[1].trap_reason);
    EXPECT_EQ(results[0].trap.pc, results[1].trap.pc);
    EXPECT_EQ(results[0].cycles, results[1].cycles);
    EXPECT_EQ(results[0].instructions, results[1].instructions);
}

// ----------------------------------------------------- exec-mode fuzz

/**
 * Random program generator for the exec-mode fuzz: straight-line ALU
 * work (as above) interleaved with word loads/stores into a scratch
 * buffer, DIFT tag-source ops (m.settag) so the shadow state is
 * non-trivially populated, BFIFO round-trips (m.read), and balanced
 * save/restore pairs so the comparison covers the whole windowed
 * physical register file.
 */
std::string
genExecFuzzProgram(Rng *rng)
{
    std::string source = "        .org 0x1000\n_start:\n";
    source += "        set 0x003ffff0, %sp\n";
    source += "        set 0x20000, %g1\n";
    for (unsigned r = 0; r < kNumRegs; ++r) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%x", rng->next32());
        source += "        set 0x";
        source += buf;
        source += ", ";
        source += kRegs[r];
        source += "\n";
    }
    unsigned depth = 0;
    for (int i = 0; i < 200; ++i) {
        const u32 kind = rng->below(100);
        const char *reg = kRegs[rng->below(kNumRegs)];
        if (kind < 50) {   // ALU (register or immediate operand)
            const GenOp &gen = kGenOps[rng->below(std::size(kGenOps))];
            std::string operand2;
            if (rng->chance(0.3)) {
                operand2 = std::to_string(
                    static_cast<s32>(rng->range(0, 8191)) - 4096);
            } else {
                operand2 = kRegs[rng->below(kNumRegs)];
            }
            source += "        ";
            source += gen.mnemonic;
            source += " ";
            source += kRegs[rng->below(kNumRegs)];
            source += ", " + operand2 + ", ";
            source += reg;
            source += "\n";
        } else if (kind < 70) {   // store to the scratch buffer
            source += "        st ";
            source += reg;
            source += ", [%g1+" + std::to_string(4 * rng->below(64)) +
                      "]\n";
        } else if (kind < 85) {   // load from the scratch buffer
            source += "        ld [%g1+" +
                      std::to_string(4 * rng->below(64)) + "], ";
            source += reg;
            source += "\n";
        } else if (kind < 92) {   // taint source (DIFT cpop)
            source += "        m.settag ";
            source += reg;
            source += "\n";
        } else if (kind < 96) {   // BFIFO tag read-back
            source += "        m.read ";
            source += reg;
            source += "\n";
        } else if (depth < 4 && rng->chance(0.5)) {
            source += "        save %sp, -96, %sp\n";
            ++depth;
        } else if (depth > 0) {
            source += "        restore\n";
            --depth;
        }
    }
    while (depth-- > 0)
        source += "        restore\n";
    source += "        ta 0\n        nop\n";
    return source;
}

/**
 * Seed-keyed fuzz differential between the two execution engines:
 * each random program runs to completion under DIFT on the fabric in
 * interpreted and threaded mode, then every piece of final state is
 * compared — the full physical register file, the window pointer, the
 * scratch memory image, the DIFT shadow register file, the shadow
 * memory tags, and the interface counters. A failure replays with the
 * printed seed.
 */
class ExecModeFuzz : public ::testing::TestWithParam<u64>
{
};

TEST_P(ExecModeFuzz, ArchitecturalAndShadowStateMatch)
{
    Rng rng(GetParam());
    const std::string source = genExecFuzzProgram(&rng);
    const Program program = Assembler::assembleOrDie(source);

    auto makeSystem = [&](ExecMode mode) {
        SystemConfig config;
        config.monitor = MonitorKind::kDift;
        config.mode = ImplMode::kFlexFabric;
        config.exec_mode = mode;
        config.max_cycles = 10'000'000;
        auto system = std::make_unique<System>(config);
        system->load(program);
        return system;
    };

    auto interp = makeSystem(ExecMode::kInterp);
    auto threaded = makeSystem(ExecMode::kThreaded);
    const RunResult ri = interp->run();
    const RunResult rt = threaded->run();

    ASSERT_EQ(ri.exit, RunResult::Exit::kExited) << "seed " << GetParam();
    ASSERT_EQ(ri.exit, rt.exit) << "seed " << GetParam();
    EXPECT_EQ(ri.cycles, rt.cycles) << "seed " << GetParam();
    EXPECT_EQ(ri.instructions, rt.instructions) << "seed " << GetParam();

    // Full physical register file + window pointer.
    EXPECT_EQ(interp->core().regs().cwp(), threaded->core().regs().cwp());
    for (unsigned phys = 0; phys < kNumPhysRegs; ++phys) {
        EXPECT_EQ(interp->core().regs().readPhys(phys),
                  threaded->core().regs().readPhys(phys))
            << "phys reg " << phys << " seed " << GetParam();
    }
    // Scratch memory image.
    for (Addr addr = 0x20000; addr < 0x20000 + 64 * 4; addr += 4) {
        EXPECT_EQ(interp->memory().read32(addr),
                  threaded->memory().read32(addr))
            << "mem 0x" << std::hex << addr << " seed " << GetParam();
    }
    // DIFT shadow state: register tags and memory tags.
    ASSERT_NE(interp->monitor(), nullptr);
    ASSERT_NE(threaded->monitor(), nullptr);
    for (unsigned phys = 0; phys < kNumPhysRegs; ++phys) {
        EXPECT_EQ(interp->monitor()->regTags().read(
                      static_cast<u16>(phys)),
                  threaded->monitor()->regTags().read(
                      static_cast<u16>(phys)))
            << "reg tag " << phys << " seed " << GetParam();
    }
    for (Addr addr = 0x20000; addr < 0x20000 + 64 * 4; addr += 4) {
        EXPECT_EQ(interp->monitor()->memTags().read(addr),
                  threaded->monitor()->memTags().read(addr))
            << "mem tag 0x" << std::hex << addr << " seed "
            << GetParam();
    }
    // Interface counters (forward decisions must be mode-invariant).
    ASSERT_NE(interp->iface(), nullptr);
    EXPECT_EQ(interp->iface()->forwardedCount(),
              threaded->iface()->forwardedCount());
    EXPECT_EQ(interp->iface()->droppedCount(),
              threaded->iface()->droppedCount());
    EXPECT_EQ(interp->iface()->stallCycles(),
              threaded->iface()->stallCycles());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecModeFuzz,
                         ::testing::Range<u64>(1, 201));

/** Threaded + per-cycle histograms is rejected with a typed error (the
 * burst loop skips per-tick sampling); trace capture is legal — the
 * run falls back to the per-cycle loop and traces byte-identically
 * (tests/test_trace_stream.cc proves that). */
TEST(ExecModeConfig, FinalizeRejectsInvalidThreadedCombos)
{
    SystemConfig histograms;
    histograms.exec_mode = ExecMode::kThreaded;
    histograms.histograms = true;
    EXPECT_EQ(histograms.finalize().code,
              ConfigError::Code::kThreadedHistograms);

    SystemConfig trace;
    trace.exec_mode = ExecMode::kThreaded;
    trace.trace_events = true;
    EXPECT_FALSE(trace.finalize());

    SystemConfig good;
    good.exec_mode = ExecMode::kThreaded;
    EXPECT_FALSE(good.finalize());
}

/** Threaded dispatch composes with the features that fall back to the
 * interpreter loop (watchdog, deterministic faults): same results. */
TEST(ExecModeConfig, ThreadedFallbackPathsStayIdentical)
{
    const Workload workload = makeSha(WorkloadScale::kTest);
    RunResult results[2];
    for (ExecMode mode : {ExecMode::kInterp, ExecMode::kThreaded}) {
        SystemConfig config;
        config.monitor = MonitorKind::kDift;
        config.mode = ImplMode::kFlexFabric;
        config.exec_mode = mode;
        config.watchdog_commits = 100'000;
        const SimOutcome out =
            SimRequest(config).workload(workload).run();
        results[mode == ExecMode::kThreaded] = out.result;
    }
    EXPECT_EQ(results[0].exit, results[1].exit);
    EXPECT_EQ(results[0].cycles, results[1].cycles);
    EXPECT_EQ(results[0].instructions, results[1].instructions);
    EXPECT_EQ(results[0].console, results[1].console);
}

}  // namespace
}  // namespace flexcore
