/**
 * @file
 * Randomized differential testing of the whole language pipeline:
 * generate random straight-line ALU programs, run them through the
 * assembler + core, and compare the final register state against an
 * independent interpreter written directly in this test (separate
 * code path from both the Alu class and the core). Any disagreement in
 * encode/decode/assemble/execute shows up as a register mismatch.
 */

#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "common/rng.h"
#include "sim/system.h"

namespace flexcore {
namespace {

/** The test's own reference semantics (intentionally re-derived). */
u32
reference(Op op, u32 a, u32 b)
{
    switch (op) {
      case Op::kAdd: return a + b;
      case Op::kSub: return a - b;
      case Op::kAnd: return a & b;
      case Op::kOr: return a | b;
      case Op::kXor: return a ^ b;
      case Op::kAndn: return a & ~b;
      case Op::kOrn: return a | ~b;
      case Op::kXnor: return ~(a ^ b);
      case Op::kSll: return a << (b & 31);
      case Op::kSrl: return a >> (b & 31);
      case Op::kSra:
        return static_cast<u32>(static_cast<s32>(a) >> (b & 31));
      case Op::kUmul:
        return static_cast<u32>(static_cast<u64>(a) * b);
      default: return 0;
    }
}

struct GenOp
{
    Op op;
    const char *mnemonic;
};

const GenOp kGenOps[] = {
    {Op::kAdd, "add"},   {Op::kSub, "sub"},   {Op::kAnd, "and"},
    {Op::kOr, "or"},     {Op::kXor, "xor"},   {Op::kAndn, "andn"},
    {Op::kOrn, "orn"},   {Op::kXnor, "xnor"}, {Op::kSll, "sll"},
    {Op::kSrl, "srl"},   {Op::kSra, "sra"},   {Op::kUmul, "umul"},
};

/** Registers the generator uses: %l0-%l7 and %o0-%o3. */
const char *kRegs[] = {"%l0", "%l1", "%l2", "%l3", "%l4", "%l5",
                       "%l6", "%l7", "%o0", "%o1", "%o2", "%o3"};
constexpr unsigned kNumRegs = 12;

class DifferentialFuzz : public ::testing::TestWithParam<u64>
{
};

TEST_P(DifferentialFuzz, RandomStraightLineProgramsMatch)
{
    Rng rng(GetParam());
    u32 model[kNumRegs];

    std::string source = "        .org 0x1000\n_start:\n";
    // Seed every register with a random value via `set`.
    for (unsigned r = 0; r < kNumRegs; ++r) {
        model[r] = rng.next32();
        source += "        set 0x" ;
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%x", model[r]);
        source += buf;
        source += ", ";
        source += kRegs[r];
        source += "\n";
    }
    // Random ALU instructions (register and immediate forms).
    for (int i = 0; i < 150; ++i) {
        const GenOp &gen = kGenOps[rng.below(std::size(kGenOps))];
        const unsigned rd = rng.below(kNumRegs);
        const unsigned rs1 = rng.below(kNumRegs);
        std::string operand2;
        u32 b;
        if (rng.chance(0.3)) {
            const s32 imm = static_cast<s32>(rng.range(0, 8191)) - 4096;
            b = static_cast<u32>(imm);
            operand2 = std::to_string(imm);
        } else {
            const unsigned rs2 = rng.below(kNumRegs);
            b = model[rs2];
            operand2 = kRegs[rs2];
        }
        model[rd] = reference(gen.op, model[rs1], b);
        source += "        ";
        source += gen.mnemonic;
        source += " ";
        source += kRegs[rs1];
        source += ", " + operand2 + ", ";
        source += kRegs[rd];
        source += "\n";
    }
    source += "        ta 0\n        nop\n";

    SystemConfig config;
    System system(config);
    system.load(Assembler::assembleOrDie(source));
    const RunResult result = system.run();
    ASSERT_EQ(result.exit, RunResult::Exit::kExited);

    for (unsigned r = 0; r < kNumRegs; ++r) {
        unsigned arch = 0;
        ASSERT_TRUE(parseRegName(kRegs[r], &arch));
        EXPECT_EQ(system.core().regs().read(arch), model[r])
            << kRegs[r] << " after seed " << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         ::testing::Range<u64>(1, 21));

/** The same differential check under every monitor: monitoring must
 * never change architectural results. */
class MonitoredDifferential
    : public ::testing::TestWithParam<MonitorKind>
{
};

TEST_P(MonitoredDifferential, MonitoringIsTransparent)
{
    Rng rng(12345);
    std::string source = "        .org 0x1000\n_start:\n";
    u32 expected = 0;
    u32 model = 7;
    source += "        mov 7, %l0\n";
    for (int i = 0; i < 80; ++i) {
        const u32 imm = rng.below(4096);
        switch (rng.below(3)) {
          case 0:
            model += imm;
            source += "        add %l0, " + std::to_string(imm) +
                      ", %l0\n";
            break;
          case 1:
            model ^= imm;
            source += "        xor %l0, " + std::to_string(imm) +
                      ", %l0\n";
            break;
          default:
            model = model << 1;
            source += "        sll %l0, 1, %l0\n";
            break;
        }
    }
    expected = model;
    source += "        mov %l0, %o0\n        ta 2\n";
    source += "        mov 0, %o0\n        ta 0\n        nop\n";

    SystemConfig config;
    config.monitor = GetParam();
    config.mode = ImplMode::kFlexFabric;
    System system(config);
    system.load(Assembler::assembleOrDie(source));
    const RunResult result = system.run();
    ASSERT_EQ(result.exit, RunResult::Exit::kExited);
    EXPECT_EQ(result.console,
              std::to_string(static_cast<s32>(expected)));
}

INSTANTIATE_TEST_SUITE_P(
    AllMonitors, MonitoredDifferential,
    ::testing::Values(MonitorKind::kUmc, MonitorKind::kDift,
                      MonitorKind::kBc, MonitorKind::kSec,
                      MonitorKind::kProf, MonitorKind::kMemProt,
                      MonitorKind::kWatch, MonitorKind::kRefCount),
    [](const ::testing::TestParamInfo<MonitorKind> &info) {
        return std::string(monitorKindName(info.param));
    });

}  // namespace
}  // namespace flexcore
