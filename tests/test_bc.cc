/** @file BC monitor unit tests: colors, propagation, bound checks. */

#include "monitors/bc.h"

#include <gtest/gtest.h>

#include "extensions/registry.h"

namespace flexcore {
namespace {

CommitPacket
aluPkt(u16 src1, u16 src2, u16 dest)
{
    CommitPacket pkt;
    pkt.di.op = Op::kAdd;
    pkt.di.type = kTypeAluAdd;
    pkt.di.valid = true;
    pkt.opcode = kTypeAluAdd;
    pkt.src1 = src1;
    pkt.src2 = src2;
    pkt.dest = dest;
    return pkt;
}

CommitPacket
loadPkt(Addr addr, u16 base_reg, u16 dest)
{
    CommitPacket pkt;
    pkt.di.op = Op::kLd;
    pkt.di.type = kTypeLoadWord;
    pkt.di.valid = true;
    pkt.opcode = kTypeLoadWord;
    pkt.addr = addr;
    pkt.src1 = base_reg;
    pkt.dest = dest;
    return pkt;
}

CommitPacket
storePkt(Addr addr, u16 base_reg, u16 data_reg)
{
    CommitPacket pkt;
    pkt.di.op = Op::kSt;
    pkt.di.type = kTypeStoreWord;
    pkt.di.valid = true;
    pkt.opcode = kTypeStoreWord;
    pkt.addr = addr;
    pkt.src1 = base_reg;
    pkt.dest = data_reg;
    return pkt;
}

CommitPacket
setRegColor(u16 reg, u8 color)
{
    CommitPacket pkt;
    pkt.di.op = Op::kCpop1;
    pkt.di.type = kTypeCpop1;
    pkt.di.cpop_fn = CpopFn::kSetRegTag;
    pkt.di.valid = true;
    pkt.opcode = kTypeCpop1;
    pkt.src1 = reg;
    pkt.dest = color;   // color value travels in the rd field
    return pkt;
}

CommitPacket
setMemColor(Addr addr, u8 color)
{
    CommitPacket pkt;
    pkt.di.op = Op::kCpop1;
    pkt.di.type = kTypeCpop1;
    pkt.di.cpop_fn = CpopFn::kSetMemTag;
    pkt.di.valid = true;
    pkt.opcode = kTypeCpop1;
    pkt.addr = addr;
    pkt.dest = color;
    return pkt;
}

MonitorResult
feed(BcMonitor *bc, const CommitPacket &pkt)
{
    MonitorResult result;
    bc->process(pkt, &result);
    return result;
}

TEST(Bc, MatchingColorsPass)
{
    BcMonitor bc;
    feed(&bc, setMemColor(0x2000, 5));
    feed(&bc, setRegColor(9, 5));
    EXPECT_FALSE(feed(&bc, loadPkt(0x2000, 9, 10)).trap);
    EXPECT_FALSE(feed(&bc, storePkt(0x2000, 9, 10)).trap);
}

TEST(Bc, ColorMismatchTraps)
{
    BcMonitor bc;
    feed(&bc, setMemColor(0x2000, 5));
    feed(&bc, setRegColor(9, 3));
    const MonitorResult r = feed(&bc, loadPkt(0x2000, 9, 10));
    EXPECT_TRUE(r.trap);
    EXPECT_STREQ(r.trap_reason, "out-of-bounds load");
}

TEST(Bc, ColoredPointerPastArrayTraps)
{
    BcMonitor bc;
    feed(&bc, setMemColor(0x2000, 5));    // arr[0] colored
    feed(&bc, setRegColor(9, 5));
    // 0x2004 was never colored: walking past the array must trap.
    const MonitorResult r = feed(&bc, storePkt(0x2004, 9, 10));
    EXPECT_TRUE(r.trap);
    EXPECT_STREQ(r.trap_reason, "out-of-bounds store");
}

TEST(Bc, UncoloredAccessToColoredMemoryTraps)
{
    BcMonitor bc;
    feed(&bc, setMemColor(0x2000, 5));
    const MonitorResult r = feed(&bc, loadPkt(0x2000, 9, 10));
    EXPECT_TRUE(r.trap);   // wild pointer into a colored object
}

TEST(Bc, PlainAccessesToPlainMemoryPass)
{
    BcMonitor bc;
    EXPECT_FALSE(feed(&bc, loadPkt(0x7000, 9, 10)).trap);
    EXPECT_FALSE(feed(&bc, storePkt(0x7000, 9, 10)).trap);
}

TEST(Bc, PointerArithmeticKeepsColor)
{
    BcMonitor bc;
    feed(&bc, setRegColor(9, 5));
    feed(&bc, aluPkt(9, 10, 11));   // ptr + offset(color 0)
    EXPECT_EQ(bc.regColor(11), 5u);
    feed(&bc, aluPkt(10, 12, 13));  // int + int
    EXPECT_EQ(bc.regColor(13), 0u);
}

TEST(Bc, ColorAdditionWrapsMod16)
{
    BcMonitor bc;
    feed(&bc, setRegColor(9, 9));
    feed(&bc, setRegColor(10, 9));
    feed(&bc, aluPkt(9, 10, 11));
    EXPECT_EQ(bc.regColor(11), 2u);   // (9+9) & 0xf
}

TEST(Bc, StoredPointerColorSurvivesMemory)
{
    BcMonitor bc;
    feed(&bc, setRegColor(9, 7));
    // Store the colored pointer to plain memory, then reload it.
    feed(&bc, storePkt(0x3000, 10, 9));
    EXPECT_EQ(bc.storedPtrColor(0x3000), 7u);
    EXPECT_EQ(bc.memColor(0x3000), 0u);   // location color unchanged
    feed(&bc, loadPkt(0x3000, 10, 12));
    EXPECT_EQ(bc.regColor(12), 7u);
}

TEST(Bc, StoreUsesTwoCacheOps)
{
    BcMonitor bc;
    const MonitorResult r = feed(&bc, storePkt(0x3000, 10, 9));
    ASSERT_EQ(r.num_ops, 2u);
    EXPECT_FALSE(r.ops[0].is_write);   // check read
    EXPECT_TRUE(r.ops[1].is_write);    // tag update
}

TEST(Bc, AllocationClearsStalePointerColor)
{
    BcMonitor bc;
    feed(&bc, setRegColor(9, 7));
    feed(&bc, storePkt(0x3000, 10, 9));
    EXPECT_EQ(bc.storedPtrColor(0x3000), 7u);
    feed(&bc, setMemColor(0x3000, 4));   // fresh allocation
    EXPECT_EQ(bc.storedPtrColor(0x3000), 0u);
    EXPECT_EQ(bc.memColor(0x3000), 4u);
}

TEST(Bc, FreeClearsColors)
{
    BcMonitor bc;
    feed(&bc, setMemColor(0x2000, 5));
    CommitPacket clr;
    clr.di.op = Op::kCpop1;
    clr.di.type = kTypeCpop1;
    clr.di.cpop_fn = CpopFn::kClearMemTag;
    clr.di.valid = true;
    clr.opcode = kTypeCpop1;
    clr.addr = 0x2000;
    feed(&bc, clr);
    EXPECT_EQ(bc.memColor(0x2000), 0u);
}

TEST(Bc, PolicyDisablesChecks)
{
    BcMonitor bc;
    feed(&bc, setMemColor(0x2000, 5));
    CommitPacket policy;
    policy.di.op = Op::kCpop1;
    policy.di.type = kTypeCpop1;
    policy.di.cpop_fn = CpopFn::kSetPolicy;
    policy.di.valid = true;
    policy.opcode = kTypeCpop1;
    policy.addr = 0;
    feed(&bc, policy);
    EXPECT_FALSE(feed(&bc, loadPkt(0x2000, 9, 10)).trap);
}

TEST(Bc, CfgrForwardsArithmeticAndMemory)
{
    Cfgr cfgr;
    ASSERT_TRUE(programCfgr(MonitorKind::kBc, &cfgr));
    EXPECT_EQ(cfgr.policy(kTypeAluAdd), ForwardPolicy::kAlways);
    EXPECT_EQ(cfgr.policy(kTypeAluLogic), ForwardPolicy::kAlways);
    EXPECT_EQ(cfgr.policy(kTypeStoreHalf), ForwardPolicy::kAlways);
    EXPECT_EQ(cfgr.policy(kTypeMul), ForwardPolicy::kIgnore);
    EXPECT_EQ(cfgr.policy(kTypeBranch), ForwardPolicy::kIgnore);
}

}  // namespace
}  // namespace flexcore
