/**
 * @file
 * Cross-cutting coverage: the qsort window-stress workload under every
 * monitor, Program image edge cases, synthesis entries for the
 * post-paper extensions, and config naming.
 */

#include <gtest/gtest.h>

#include "assembler/program.h"
#include "monitors/monitor.h"
#include "sim/sim_request.h"
#include "synth/extension_synth.h"

namespace flexcore {
namespace {

TEST(Qsort, SortsCorrectlyOnBaseline)
{
    const Workload w = makeQsort(WorkloadScale::kTest);
    SystemConfig config;
    const SimOutcome outcome = SimRequest(config).workload(w).run();
    EXPECT_EQ(outcome.result.exit, RunResult::Exit::kExited);
    // The golden console ends with the sortedness flag "1".
    EXPECT_NE(w.expected_console.find("\n1\n"), std::string::npos);
}

class QsortUnderMonitor : public ::testing::TestWithParam<MonitorKind>
{
};

TEST_P(QsortUnderMonitor, DeepRecursionSpillsStayCorrect)
{
    const Workload w = makeQsort(WorkloadScale::kTest);
    SystemConfig config;
    config.monitor = GetParam();
    config.mode = ImplMode::kFlexFabric;
    // SimRequest::run() fatals on any output mismatch: a single
    // corrupted spill/fill under monitoring would show up here.
    const SimOutcome outcome = SimRequest(config).workload(w).run();
    EXPECT_EQ(outcome.result.exit, RunResult::Exit::kExited);
}

INSTANTIATE_TEST_SUITE_P(
    AllMonitors, QsortUnderMonitor,
    ::testing::Values(MonitorKind::kUmc, MonitorKind::kDift,
                      MonitorKind::kBc, MonitorKind::kSec,
                      MonitorKind::kProf, MonitorKind::kMemProt,
                      MonitorKind::kWatch, MonitorKind::kRefCount),
    [](const ::testing::TestParamInfo<MonitorKind> &info) {
        return std::string(monitorKindName(info.param));
    });

TEST(Program, AppendAndReadBackWords)
{
    Program prog;
    prog.setBase(0x2000);
    prog.appendWord(0xdeadbeef);
    prog.appendWord(0x12345678);
    EXPECT_EQ(prog.size(), 8u);
    EXPECT_EQ(prog.end(), 0x2008u);
    EXPECT_EQ(prog.wordAt(0x2000), 0xdeadbeefu);
    EXPECT_EQ(prog.wordAt(0x2004), 0x12345678u);
    // Big-endian byte order in the image.
    EXPECT_EQ(prog.image()[0], 0xde);
    EXPECT_EQ(prog.image()[3], 0xef);
}

TEST(Program, PatchWordOverwrites)
{
    Program prog;
    prog.setBase(0x1000);
    prog.appendWord(0);
    prog.patchWord(0x1000, 42);
    EXPECT_EQ(prog.wordAt(0x1000), 42u);
}

TEST(Program, SymbolsAreUnique)
{
    Program prog;
    EXPECT_TRUE(prog.defineSymbol("a", 1));
    EXPECT_FALSE(prog.defineSymbol("a", 2));
    u32 value = 0;
    EXPECT_TRUE(prog.lookupSymbol("a", &value));
    EXPECT_EQ(value, 1u);
    EXPECT_FALSE(prog.lookupSymbol("missing", &value));
}

using ProgramDeathTest = ::testing::Test;

TEST(ProgramDeathTest, OutOfImageAccessesPanic)
{
    Program prog;
    prog.setBase(0x1000);
    prog.appendWord(0);
    EXPECT_DEATH(prog.wordAt(0x0ffc), "outside image");
    EXPECT_DEATH(prog.wordAt(0x1004), "outside image");
    EXPECT_DEATH(prog.patchWord(0x2000, 1), "outside image");
}

TEST(SynthExtras, PostPaperExtensionsHaveInventories)
{
    // Every registered monitor kind must synthesize to something
    // plausible: nonzero LUTs, all smaller than SEC (the largest of
    // the paper's four).
    const u32 sec_luts =
        mapToFpga(extensionSynth(MonitorKind::kSec).fabric).luts;
    for (MonitorKind kind :
         {MonitorKind::kProf, MonitorKind::kMemProt, MonitorKind::kWatch,
          MonitorKind::kRefCount}) {
        const ExtensionSynth ext = extensionSynth(kind);
        const FpgaResources res = mapToFpga(ext.fabric);
        EXPECT_GT(res.luts, 30u) << monitorKindName(kind);
        EXPECT_LT(res.luts, sec_luts) << monitorKindName(kind);
        EXPECT_GE(ext.tapped_groups, 2u);
    }
}

TEST(ConfigNames, AllKindsNamed)
{
    for (MonitorKind kind :
         {MonitorKind::kNone, MonitorKind::kUmc, MonitorKind::kDift,
          MonitorKind::kBc, MonitorKind::kSec, MonitorKind::kProf,
          MonitorKind::kMemProt, MonitorKind::kWatch,
          MonitorKind::kRefCount}) {
        EXPECT_NE(monitorKindName(kind), "?");
    }
    for (ImplMode mode : {ImplMode::kBaseline, ImplMode::kAsic,
                          ImplMode::kFlexFabric, ImplMode::kSoftware}) {
        EXPECT_NE(implModeName(mode), "?");
    }
}

TEST(ConfigNames, MakeMonitorCoversEveryKind)
{
    for (MonitorKind kind :
         {MonitorKind::kUmc, MonitorKind::kDift, MonitorKind::kBc,
          MonitorKind::kSec, MonitorKind::kProf, MonitorKind::kMemProt,
          MonitorKind::kWatch, MonitorKind::kRefCount}) {
        const auto monitor = makeMonitor(kind);
        ASSERT_NE(monitor, nullptr);
        EXPECT_FALSE(monitor->name().empty());
        EXPECT_GE(monitor->pipelineDepth(), 3u);
        EXPECT_LE(monitor->pipelineDepth(), 6u);
    }
    EXPECT_EQ(makeMonitor(MonitorKind::kNone), nullptr);
}

TEST(TagStore, ReadsZeroWhenUntouched)
{
    TagStore tags;
    EXPECT_EQ(tags.read(0), 0u);
    EXPECT_EQ(tags.read(0xfffffffc), 0u);
}

TEST(TagStore, WordGranularStorage)
{
    TagStore tags;
    tags.write(0x1000, 0xab);
    EXPECT_EQ(tags.read(0x1000), 0xab);
    EXPECT_EQ(tags.read(0x1001), 0xab);   // same word
    EXPECT_EQ(tags.read(0x1003), 0xab);
    EXPECT_EQ(tags.read(0x1004), 0u);     // next word
}

TEST(TagStore, PageBoundaries)
{
    TagStore tags;
    const Addr last_word = (1u << TagStore::kPageShift) - 4;
    tags.write(last_word, 1);
    tags.write(last_word + 4, 2);   // first word of the next page
    EXPECT_EQ(tags.read(last_word), 1u);
    EXPECT_EQ(tags.read(last_word + 4), 2u);
}

TEST(TagStore, ZeroWritesDontAllocate)
{
    TagStore tags;
    // Writing zero to untouched memory must be a no-op (and not
    // allocate a page); this keeps sparse workloads cheap.
    tags.write(0x50000000, 0);
    EXPECT_EQ(tags.read(0x50000000), 0u);
    tags.write(0x50000000, 3);
    tags.write(0x50000000, 0);   // explicit clear still works
    EXPECT_EQ(tags.read(0x50000000), 0u);
}

TEST(AsicVsFabric, AsicIsAtLeastAsFastAsOneXFabric)
{
    // The ASIC variant is the 1X-fabric configuration minus the
    // clock-domain synchronizer: it can never be slower.
    const Workload w = makeGmac(WorkloadScale::kTest);
    SystemConfig asic;
    asic.monitor = MonitorKind::kDift;
    asic.mode = ImplMode::kAsic;
    const SimOutcome a = SimRequest(asic).workload(w).run();

    SystemConfig flex1x;
    flex1x.monitor = MonitorKind::kDift;
    flex1x.mode = ImplMode::kFlexFabric;
    flex1x.flex_period = 1;
    const SimOutcome f = SimRequest(flex1x).workload(w).run();

    EXPECT_LE(a.result.cycles, f.result.cycles);
    EXPECT_EQ(a.forwarded, f.forwarded);
}

TEST(WorkloadHelpers, WordDataRoundTrips)
{
    const std::string text = wordData({0x11223344, 0xdeadbeef});
    EXPECT_NE(text.find(".word"), std::string::npos);
    EXPECT_NE(text.find("0x11223344"), std::string::npos);
    EXPECT_NE(text.find("0xdeadbeef"), std::string::npos);
}

}  // namespace
}  // namespace flexcore
