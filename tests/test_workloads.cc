/**
 * @file
 * Workload integration tests: every benchmark kernel (test scale) must
 * run to completion with golden-verified output on the baseline and
 * under every extension in ASIC, FlexCore, and software modes. This is
 * the end-to-end correctness net for the whole simulator.
 */

#include <gtest/gtest.h>

#include "sim/sim_request.h"

namespace flexcore {
namespace {

struct Case
{
    std::string workload;
    MonitorKind monitor;
    ImplMode mode;
};

std::string
caseName(const ::testing::TestParamInfo<Case> &info)
{
    return info.param.workload + "_" +
           std::string(monitorKindName(info.param.monitor)) + "_" +
           std::string(implModeName(info.param.mode));
}

Workload
workloadByName(const std::string &name)
{
    for (Workload &w : benchmarkSuite(WorkloadScale::kTest)) {
        if (w.name == name)
            return w;
    }
    ADD_FAILURE() << "unknown workload " << name;
    return {};
}

class WorkloadMatrix : public ::testing::TestWithParam<Case>
{
};

TEST_P(WorkloadMatrix, GoldenOutputUnderMonitoring)
{
    const Case &c = GetParam();
    const Workload workload = workloadByName(c.workload);
    SystemConfig config;
    config.monitor = c.monitor;
    config.mode = c.mode;
    // the verified SimRequest fatals on functional mismatch; reaching the
    // return value means console output matched the golden model.
    const SimOutcome outcome = SimRequest(config).workload(workload).run();
    EXPECT_EQ(outcome.result.exit, RunResult::Exit::kExited);
    if (c.mode == ImplMode::kAsic || c.mode == ImplMode::kFlexFabric) {
        EXPECT_GT(outcome.forwarded, 0u);
    }
}

std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    for (const char *name : {"sha", "gmac", "stringsearch", "fft",
                             "basicmath", "bitcount"}) {
        cases.push_back({name, MonitorKind::kNone, ImplMode::kBaseline});
        for (MonitorKind kind : {MonitorKind::kUmc, MonitorKind::kDift,
                                 MonitorKind::kBc, MonitorKind::kSec}) {
            cases.push_back({name, kind, ImplMode::kAsic});
            cases.push_back({name, kind, ImplMode::kFlexFabric});
            cases.push_back({name, kind, ImplMode::kSoftware});
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllModes, WorkloadMatrix,
                         ::testing::ValuesIn(allCases()), caseName);

TEST(Workloads, MonitoredRunsAreNeverFaster)
{
    for (const Workload &w : benchmarkSuite(WorkloadScale::kTest)) {
        SystemConfig base;
        const u64 baseline = SimRequest(base).workload(w).run().result.cycles;
        for (MonitorKind kind : {MonitorKind::kUmc, MonitorKind::kDift,
                                 MonitorKind::kBc, MonitorKind::kSec}) {
            SystemConfig flex;
            flex.monitor = kind;
            flex.mode = ImplMode::kFlexFabric;
            EXPECT_GE(SimRequest(flex).workload(w).run().result.cycles,
                      baseline)
                << w.name << " " << monitorKindName(kind);
        }
    }
}

TEST(Workloads, SlowerFabricNeverFaster)
{
    const Workload w = workloadByName("gmac");
    u64 prev = 0;
    for (u32 period : {1u, 2u, 4u, 8u}) {
        SystemConfig config;
        config.monitor = MonitorKind::kDift;
        config.mode = ImplMode::kFlexFabric;
        config.flex_period = period;
        const u64 cycles = SimRequest(config).workload(w).run().result.cycles;
        EXPECT_GE(cycles, prev) << "period " << period;
        prev = cycles;
    }
}

TEST(Workloads, SuiteHasSixBenchmarksInTableOrder)
{
    const auto suite = benchmarkSuite(WorkloadScale::kTest);
    ASSERT_EQ(suite.size(), 6u);
    EXPECT_EQ(suite[0].name, "sha");
    EXPECT_EQ(suite[1].name, "gmac");
    EXPECT_EQ(suite[2].name, "stringsearch");
    EXPECT_EQ(suite[3].name, "fft");
    EXPECT_EQ(suite[4].name, "basicmath");
    EXPECT_EQ(suite[5].name, "bitcount");
    for (const Workload &w : suite) {
        EXPECT_FALSE(w.source.empty());
        EXPECT_FALSE(w.expected_console.empty());
    }
}

TEST(Workloads, DeterministicAcrossRuns)
{
    const Workload w = workloadByName("fft");
    SystemConfig config;
    config.monitor = MonitorKind::kBc;
    config.mode = ImplMode::kFlexFabric;
    const SimOutcome a = SimRequest(config).workload(w).run();
    const SimOutcome b = SimRequest(config).workload(w).run();
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(a.forwarded, b.forwarded);
    EXPECT_EQ(a.meta_misses, b.meta_misses);
}

}  // namespace
}  // namespace flexcore
