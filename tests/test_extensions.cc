/**
 * @file
 * Tests for the extension features beyond the paper's prototype:
 * multi-bit DIFT taint labels (footnote 2), the optional meta-data
 * TLB (§III-B), and precise monitor exceptions (§III-C).
 */

#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "monitors/dift.h"
#include "sim/sim_request.h"
#include "sim/system.h"

namespace flexcore {
namespace {

// ---- Multi-bit DIFT labels ----

CommitPacket
setLabel(u16 reg, u8 label)
{
    CommitPacket pkt;
    pkt.di.op = Op::kCpop1;
    pkt.di.type = kTypeCpop1;
    pkt.di.cpop_fn = CpopFn::kSetRegTag;
    pkt.di.valid = true;
    pkt.opcode = kTypeCpop1;
    pkt.src1 = reg;
    pkt.dest = label;
    return pkt;
}

CommitPacket
alu(u16 src1, u16 src2, u16 dest)
{
    CommitPacket pkt;
    pkt.di.op = Op::kAdd;
    pkt.di.type = kTypeAluAdd;
    pkt.di.valid = true;
    pkt.opcode = kTypeAluAdd;
    pkt.src1 = src1;
    pkt.src2 = src2;
    pkt.dest = dest;
    return pkt;
}

TEST(DiftMultiBit, LabelsCombineAsBitmask)
{
    DiftMonitor dift(4);
    MonitorResult ignore;
    dift.process(setLabel(9, 0b0001), &ignore);    // source A
    dift.process(setLabel(10, 0b0100), &ignore);   // source C
    dift.process(alu(9, 10, 11), &ignore);
    EXPECT_EQ(dift.regLabel(11), 0b0101);          // both sources
    EXPECT_TRUE(dift.regTainted(11));
}

TEST(DiftMultiBit, LabelsSurviveMemoryRoundTrip)
{
    DiftMonitor dift(4);
    MonitorResult ignore;
    dift.process(setLabel(9, 0b1010), &ignore);
    CommitPacket st;
    st.di.op = Op::kSt;
    st.di.type = kTypeStoreWord;
    st.di.valid = true;
    st.opcode = kTypeStoreWord;
    st.addr = 0x2000;
    st.dest = 9;
    dift.process(st, &ignore);
    EXPECT_EQ(dift.memLabel(0x2000), 0b1010);

    CommitPacket ld;
    ld.di.op = Op::kLd;
    ld.di.type = kTypeLoadWord;
    ld.di.valid = true;
    ld.opcode = kTypeLoadWord;
    ld.addr = 0x2000;
    ld.dest = 12;
    dift.process(ld, &ignore);
    EXPECT_EQ(dift.regLabel(12), 0b1010);
}

TEST(DiftMultiBit, WiderTagsWidenMetaFootprint)
{
    DiftMonitor narrow(1), wide(4);
    EXPECT_EQ(narrow.tagBitsPerWord(), 1u);
    EXPECT_EQ(wide.tagBitsPerWord(), 4u);
    // 4-bit tags put adjacent words in different meta bytes sooner.
    EXPECT_EQ(narrow.metaAddr(0x00), narrow.metaAddr(0x1c));
    EXPECT_NE(wide.metaAddr(0x00), wide.metaAddr(0x1c));
}

TEST(DiftMultiBit, SingleBitModeMasksLabels)
{
    DiftMonitor dift(1);
    MonitorResult ignore;
    dift.process(setLabel(9, 0b0100), &ignore);   // masked to bit 0
    EXPECT_EQ(dift.regLabel(9), 1u);
}

TEST(DiftMultiBit, SystemConfigSelectsWidth)
{
    const char *source = R"(
        .org 0x1000
_start: set buf, %l0
        m.settag %l1, 2        ; label bit 1
        m.settag %l2, 8        ; label bit 3
        add %l1, %l2, %l3      ; labels merge
        m.read %o0, 0          ; read %l3's label... selector unused
        mov 0, %o0
        ta 0
        nop
        .align 4
buf:    .word 0
)";
    SystemConfig config;
    config.monitor = MonitorKind::kDift;
    config.mode = ImplMode::kFlexFabric;
    config.dift_tag_bits = 4;
    System system(config);
    system.load(Assembler::assembleOrDie(source));
    const RunResult result = system.run();
    EXPECT_EQ(result.exit, RunResult::Exit::kExited);
    const auto *dift = static_cast<DiftMonitor *>(system.monitor());
    // %l3 is architectural reg 19 in window 0 -> physical 8 + 11.
    EXPECT_EQ(dift->regLabel(static_cast<u16>(physRegIndex(0, 19))),
              0b1010);
}

using ExtensionsDeathTest = ::testing::Test;

TEST(ExtensionsDeathTest, RejectsUnsupportedTagWidth)
{
    EXPECT_DEATH(DiftMonitor dift(3), "1- or 4-bit");
}

// ---- Meta-data TLB ----

TEST(MetaTlb, DisabledByDefaultMatchesPrototype)
{
    const Workload w = makeGmac(WorkloadScale::kTest);
    SystemConfig config;
    config.monitor = MonitorKind::kDift;
    config.mode = ImplMode::kFlexFabric;
    const SimOutcome base = SimRequest(config).workload(w).run();

    SystemConfig with_tlb = config;
    with_tlb.fabric.tlb.enabled = true;
    with_tlb.fabric.tlb.entries = 16;
    const SimOutcome tlb = SimRequest(with_tlb).workload(w).run();

    // Translation adds walks, so the TLB run can only be slower.
    EXPECT_GE(tlb.result.cycles, base.result.cycles);
}

TEST(MetaTlb, MissesAreBounded)
{
    const Workload w = makeGmac(WorkloadScale::kTest);
    SystemConfig config;
    config.monitor = MonitorKind::kUmc;
    config.mode = ImplMode::kFlexFabric;
    config.fabric.tlb.enabled = true;
    config.fabric.tlb.entries = 16;
    System system(config);
    system.load(Assembler::assembleOrDie(w.source));
    const RunResult result = system.run();
    EXPECT_EQ(result.exit, RunResult::Exit::kExited);
    // gmac's meta footprint is tiny: a handful of pages => a handful
    // of compulsory TLB misses.
    EXPECT_GT(system.fabric()->tlbMisses(), 0u);
    EXPECT_LT(system.fabric()->tlbMisses(), 10u);
}

TEST(MetaTlb, SmallerTlbMissesMore)
{
    const Workload w = makeStringsearch(WorkloadScale::kTest);
    u64 misses_small = 0, misses_large = 0;
    for (u32 entries : {1u, 64u}) {
        SystemConfig config;
        config.monitor = MonitorKind::kBc;
        config.mode = ImplMode::kFlexFabric;
        config.fabric.tlb.enabled = true;
        config.fabric.tlb.entries = entries;
        System system(config);
        system.load(Assembler::assembleOrDie(w.source));
        EXPECT_EQ(system.run().exit, RunResult::Exit::kExited);
        (entries == 1 ? misses_small : misses_large) =
            system.fabric()->tlbMisses();
    }
    EXPECT_GE(misses_small, misses_large);
}

// ---- Precise exceptions ----

TEST(PreciseExceptions, CostMoreThanImprecise)
{
    const Workload w = makeBitcount(WorkloadScale::kTest);
    SystemConfig imprecise;
    imprecise.monitor = MonitorKind::kDift;
    imprecise.mode = ImplMode::kFlexFabric;
    const SimOutcome fast = SimRequest(imprecise).workload(w).run();

    SystemConfig precise = imprecise;
    precise.precise_exceptions = true;
    const SimOutcome slow = SimRequest(precise).workload(w).run();

    // Waiting for CACK on every forwarded instruction costs at least
    // the pipeline depth each time: a large, measurable gap.
    EXPECT_GT(slow.result.cycles, fast.result.cycles * 2);
}

TEST(PreciseExceptions, StillFunctionallyCorrect)
{
    for (const Workload &w : benchmarkSuite(WorkloadScale::kTest)) {
        SystemConfig config;
        config.monitor = MonitorKind::kUmc;
        config.mode = ImplMode::kFlexFabric;
        config.precise_exceptions = true;
        const SimOutcome outcome = SimRequest(config).workload(w).run();
        EXPECT_EQ(outcome.result.exit, RunResult::Exit::kExited)
            << w.name;
    }
}

TEST(PreciseExceptions, TrapStillDelivered)
{
    const char *source = R"(
        .org 0x1000
_start: set 0x20000, %l0
        m.clrmtag [%l0]
        ld [%l0], %o0
        mov 0, %o0
        ta 0
        nop
)";
    SystemConfig config;
    config.monitor = MonitorKind::kUmc;
    config.mode = ImplMode::kFlexFabric;
    config.precise_exceptions = true;
    System system(config);
    system.load(Assembler::assembleOrDie(source));
    EXPECT_EQ(system.run().exit, RunResult::Exit::kMonitorTrap);
}

}  // namespace
}  // namespace flexcore
