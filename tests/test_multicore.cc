/**
 * @file
 * Multi-core system tests (docs/multicore.md): N-core construction
 * and clean exit in both fabric topologies, the kCoreId syscall and
 * per-core console concatenation, shared-window coherence, end-to-end
 * cross-core DIFT detection through the shared tag store, run-to-run
 * determinism, per-core profile invariants, core-indexed fault-plan
 * parsing, the campaign core-count axis, and the wire schema's
 * default-elision of the multi-core fields.
 */

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "core/profile.h"
#include "faults/fault_plan.h"
#include "sim/campaign.h"
#include "sim/sim_request.h"
#include "sim/system.h"

namespace flexcore {
namespace {

std::string
readProgram(const char *name)
{
    const std::string path =
        std::string(FLEXCORE_TEST_DATA_DIR "/../../programs/") + name;
    std::ifstream file(path);
    EXPECT_TRUE(file.is_open()) << "cannot open " << path;
    std::stringstream source;
    source << file.rdbuf();
    return source.str();
}

/** Every core prints its own index, then exits cleanly. */
constexpr char kCoreIdSource[] = R"(
        .org 0x1000
_start: set 0x003ffff0, %sp
        ta 3
        ta 2
        mov 0, %o0
        ta 0
        nop
)";

SystemConfig
multiConfig(u32 cores, FabricSharing sharing,
            MonitorKind monitor = MonitorKind::kNone)
{
    SystemConfig config;
    config.num_cores = cores;
    config.fabric_sharing = sharing;
    config.monitor = monitor;
    config.mode = monitor == MonitorKind::kNone ? ImplMode::kBaseline
                                                : ImplMode::kFlexFabric;
    config.max_cycles = 2'000'000;
    return config;
}

SimOutcome
run(SystemConfig config, const std::string &source)
{
    return SimRequest(std::move(config)).source(source).statsJson().run();
}

TEST(Multicore, CoreIdSyscallAndConsoleConcatenation)
{
    // Single-core: core id 0, the pre-refactor behavior.
    const SimOutcome one =
        run(multiConfig(1, FabricSharing::kPerCore), kCoreIdSource);
    EXPECT_EQ(one.result.exit, RunResult::Exit::kExited);
    EXPECT_EQ(one.result.console, "0");

    // N cores print their indices; consoles concatenate in core order.
    for (const FabricSharing sharing :
         {FabricSharing::kPerCore, FabricSharing::kShared}) {
        const SimOutcome four =
            run(multiConfig(4, sharing), kCoreIdSource);
        EXPECT_EQ(four.result.exit, RunResult::Exit::kExited);
        EXPECT_EQ(four.result.console, "0123");
        // Every core ran the whole program, so commit counts sum.
        EXPECT_EQ(four.result.instructions, 4 * one.result.instructions);
    }
}

TEST(Multicore, SharedWindowCoherenceLetsBaselineExitCleanly)
{
    // taint_xcore's consumer spins on a flag core 0 publishes through
    // the coherent shared window; without coherence the run would hit
    // max_cycles. Unmonitored, the dispatch is a legal call.
    const std::string source = readProgram("taint_xcore.s");
    for (const FabricSharing sharing :
         {FabricSharing::kPerCore, FabricSharing::kShared}) {
        const SimOutcome out = run(multiConfig(2, sharing), source);
        EXPECT_EQ(out.result.exit, RunResult::Exit::kExited)
            << "sharing=" << static_cast<int>(sharing);
    }
    // Single-core takes only the producer path.
    const SimOutcome one =
        run(multiConfig(1, FabricSharing::kPerCore), source);
    EXPECT_EQ(one.result.exit, RunResult::Exit::kExited);
}

TEST(Multicore, CrossCoreTaintDetectedByDift)
{
    // Core 0 taints a word and publishes it; core 1 jumps through it.
    // The taint crosses cores via the shared window's tag store, so
    // core 1's DIFT monitor traps in both fabric topologies.
    const std::string source = readProgram("taint_xcore.s");
    for (const FabricSharing sharing :
         {FabricSharing::kPerCore, FabricSharing::kShared}) {
        const SimOutcome out = run(
            multiConfig(2, sharing, MonitorKind::kDift), source);
        EXPECT_EQ(out.result.exit, RunResult::Exit::kMonitorTrap)
            << "sharing=" << static_cast<int>(sharing);
        EXPECT_FALSE(out.result.trap_reason.empty());
    }
}

TEST(Multicore, RunsAreDeterministic)
{
    // Same config, same program, twice: byte-identical stats JSON in
    // both topologies (the multi-core determinism contract).
    const std::string source = readProgram("taint_xcore.s");
    for (const FabricSharing sharing :
         {FabricSharing::kPerCore, FabricSharing::kShared}) {
        const SimOutcome a = run(
            multiConfig(2, sharing, MonitorKind::kDift), source);
        const SimOutcome b = run(
            multiConfig(2, sharing, MonitorKind::kDift), source);
        EXPECT_EQ(a.result.cycles, b.result.cycles);
        EXPECT_EQ(a.stats_json, b.stats_json);
    }
}

TEST(Multicore, PerCoreProfilesSumToPerCoreCycles)
{
    SystemConfig config =
        multiConfig(2, FabricSharing::kShared, MonitorKind::kDift);
    System system(std::move(config));
    PcProfile p0;
    PcProfile p1;
    system.attachProfileAt(0, &p0);
    system.attachProfileAt(1, &p1);
    system.load(Assembler::assembleOrDie(readProgram("taint_xcore.s")));
    const RunResult result = system.run();
    EXPECT_EQ(result.exit, RunResult::Exit::kMonitorTrap);
    // Each table covers exactly its core's cycle counter: core 0 keeps
    // the flat legacy stat names, core 1 lives under the "c1" group.
    EXPECT_EQ(p0.total(), system.stats().lookup("core.cycles"));
    EXPECT_EQ(p1.total(), system.stats().lookup("c1.core.cycles"));
    EXPECT_GT(p1.total(), 0u);
}

TEST(Multicore, FaultPlanCoreSyntaxRoundTrips)
{
    FaultSpec spec;
    std::string error;
    ASSERT_TRUE(parseFaultSpec("reg@i800:t17:b3:c1", &spec, &error))
        << error;
    EXPECT_EQ(spec.trigger, FaultTrigger::kCommit);
    EXPECT_EQ(spec.when, 800u);
    EXPECT_EQ(spec.target, 17u);
    EXPECT_EQ(spec.core, 1u);
    EXPECT_EQ(formatFaultSpec(spec), "reg@i800:t17:b3:c1");

    // A cycle trigger followed by a core selector: the first c is the
    // trigger, the second is the core.
    ASSERT_TRUE(parseFaultSpec("mem@c5000:t0x2040:b5:c2", &spec, &error))
        << error;
    EXPECT_EQ(spec.trigger, FaultTrigger::kCycle);
    EXPECT_EQ(spec.when, 5000u);
    EXPECT_EQ(spec.core, 2u);

    // Single-core specs keep their old rendering: no :c0 suffix.
    FaultSpec plain;
    ASSERT_TRUE(parseFaultSpec("reg@i800:t17:b3", &plain, &error));
    EXPECT_EQ(plain.core, 0u);
    EXPECT_EQ(formatFaultSpec(plain), "reg@i800:t17:b3");
}

TEST(Multicore, FinalizeRejectsOutOfRangeFaultCore)
{
    SystemConfig config = multiConfig(2, FabricSharing::kPerCore);
    FaultSpec spec;
    std::string error;
    ASSERT_TRUE(parseFaultSpec("reg@i800:t17:b3:c2", &spec, &error));
    config.faults.specs.push_back(spec);
    const ConfigError bad = config.finalize();
    EXPECT_EQ(bad.code, ConfigError::Code::kBadFaultPlan);
}

TEST(Multicore, FinalizeRejectsBadCoreCombos)
{
    SystemConfig config = multiConfig(0, FabricSharing::kPerCore);
    EXPECT_EQ(config.finalize().code, ConfigError::Code::kBadCores);

    config = multiConfig(SystemConfig::kMaxCores + 1,
                         FabricSharing::kPerCore);
    EXPECT_EQ(config.finalize().code, ConfigError::Code::kBadCores);

    // Multi-core is interpreter-only.
    config = multiConfig(2, FabricSharing::kPerCore);
    config.exec_mode = ExecMode::kThreaded;
    EXPECT_EQ(config.finalize().code, ConfigError::Code::kBadCores);
}

TEST(Multicore, SweepCoreAxisSuffixesOnlyMultiCoreKeys)
{
    SweepSpec spec;
    spec.name = "cores";
    Workload wl;
    wl.name = "tiny";
    wl.source = kCoreIdSource;
    spec.workloads = {wl};
    spec.monitors = {MonitorKind::kDift};
    spec.modes = {ImplMode::kFlexFabric};
    spec.core_counts = {1, 2};
    spec.base.fabric_sharing = FabricSharing::kShared;
    const auto jobs = expandSweep(spec);
    ASSERT_EQ(jobs.size(), 2u);
    // Single-core keys (and their FNV seeds) keep pre-multi-core
    // bytes; the 2-core job carries the |c2 suffix and the core count.
    EXPECT_EQ(jobs[0].key.find("|c"), std::string::npos);
    EXPECT_EQ(jobs[0].config.num_cores, 1u);
    EXPECT_NE(jobs[1].key.find("|c2"), std::string::npos);
    EXPECT_EQ(jobs[1].config.num_cores, 2u);
    EXPECT_EQ(jobs[0].config.fault_seed, jobSeed(jobs[0].key));
}

TEST(Multicore, WireSchemaElidesDefaultsAndRoundTrips)
{
    // A single-core request serializes without the multi-core keys, so
    // pre-multi-core clients and goldens keep their bytes.
    SimRequest plain;
    plain.source(kCoreIdSource);
    EXPECT_EQ(plain.toJson().find("\"cores\""), std::string::npos);
    EXPECT_EQ(plain.toJson().find("fabric_sharing"), std::string::npos);

    SystemConfig config = multiConfig(2, FabricSharing::kShared);
    SimRequest multi(std::move(config));
    multi.source(kCoreIdSource);
    const std::string json = multi.toJson();
    EXPECT_NE(json.find("\"cores\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"fabric_sharing\": \"shared\""),
              std::string::npos);

    SimRequest parsed;
    ConfigError error;
    ASSERT_TRUE(SimRequest::fromJson(json, &parsed, &error))
        << error.message;
    EXPECT_EQ(parsed.toJson(), json);
    const SimOutcome out = parsed.run();
    EXPECT_EQ(out.result.exit, RunResult::Exit::kExited);
    EXPECT_EQ(out.result.console, "01");
}

TEST(Multicore, CoreIndexedFaultHitsOnlyTheTargetCore)
{
    // Flip a register on core 1 late in the run; core 0's stream is
    // untouched, so the fault plan's core field is what selects the
    // victim. The run still completes (either cleanly or with the
    // corruption surfacing on core 1).
    SystemConfig config = multiConfig(2, FabricSharing::kShared);
    FaultSpec spec;
    std::string error;
    ASSERT_TRUE(parseFaultSpec("reg@c50:t17:b3:c1", &spec, &error));
    config.faults.specs.push_back(spec);
    ASSERT_FALSE(config.finalize());
    const SimOutcome out = SimRequest(std::move(config))
                               .source(kCoreIdSource)
                               .run();
    ASSERT_NE(out.result.exit, RunResult::Exit::kMaxCycles);
}

}  // namespace
}  // namespace flexcore
