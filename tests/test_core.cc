/** @file Core execution tests: small assembly programs end to end. */

#include "core/core.h"

#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "sim/system.h"

namespace flexcore {
namespace {

/** Run a source snippet on the baseline system and return the result. */
RunResult
run(const std::string &body, System **system_out = nullptr,
    SystemConfig config = {})
{
    static std::unique_ptr<System> system;
    system = std::make_unique<System>(config);
    system->load(Assembler::assembleOrDie(
        "        .org 0x1000\n_start: set 0x003ffff0, %sp\n" + body));
    if (system_out)
        *system_out = system.get();
    return system->run();
}

TEST(Core, ArithmeticAndExitCode)
{
    const RunResult r = run(R"(
        mov 40, %o0
        add %o0, 2, %o0
        ta 0
        nop
)");
    EXPECT_EQ(r.exit, RunResult::Exit::kExited);
    EXPECT_EQ(r.exit_code, 42u);
}

TEST(Core, ConsoleSyscalls)
{
    const RunResult r = run(R"(
        mov -7, %o0
        ta 2
        mov 10, %o0
        ta 1
        mov 72, %o0
        ta 1
        mov 0, %o0
        ta 0
        nop
)");
    EXPECT_EQ(r.console, "-7\nH");
}

TEST(Core, DelaySlotExecutesBeforeTarget)
{
    const RunResult r = run(R"(
        mov 1, %o0
        ba join
        mov 2, %o0       ; delay slot must execute
        mov 3, %o0       ; skipped
join:   ta 0
        nop
)");
    EXPECT_EQ(r.exit_code, 2u);
}

TEST(Core, AnnulledDelaySlotSkipped)
{
    const RunResult r = run(R"(
        mov 1, %o0
        ba,a join
        mov 2, %o0       ; annulled: must NOT execute
join:   ta 0
        nop
)");
    EXPECT_EQ(r.exit_code, 1u);
}

TEST(Core, ConditionalAnnulRules)
{
    // Untaken branch with annul bit: delay slot annulled.
    const RunResult r = run(R"(
        cmp %g0, %g0        ; Z=1
        bne,a nottaken
        mov 9, %o0          ; annulled (branch untaken)
        mov 5, %o0
        ta 0
        nop
nottaken:
        mov 7, %o0
        ta 0
        nop
)");
    EXPECT_EQ(r.exit_code, 5u);

    // Taken conditional with annul bit: delay slot executes.
    const RunResult r2 = run(R"(
        cmp %g0, %g0
        be,a taken
        mov 11, %o0         ; executes (branch taken)
        mov 1, %o0
taken:  ta 0
        nop
)");
    EXPECT_EQ(r2.exit_code, 11u);
}

TEST(Core, CallAndReturn)
{
    const RunResult r = run(R"(
        call func
        mov 5, %o0          ; delay slot sets the argument
        ta 0
        nop
func:   retl
        add %o0, 1, %o0     ; delay slot of retl
)");
    EXPECT_EQ(r.exit_code, 6u);
}

TEST(Core, SaveRestoreWindowSemantics)
{
    const RunResult r = run(R"(
        mov 10, %o0
        call func
        nop
        ta 0                ; %o0 = callee's %i0 after restore
        nop
func:   save %sp, -96, %sp
        add %i0, 32, %i0    ; result in callee %i0 == caller %o0
        ret
        restore
)");
    EXPECT_EQ(r.exit_code, 42u);
}

TEST(Core, DeepRecursionSpillsAndFills)
{
    // factorial-ish recursion deeper than NWINDOWS forces window
    // overflow (spill) and underflow (fill) traps.
    System *system = nullptr;
    const RunResult r = run(R"(
        mov 12, %o0
        call sum            ; sum(n) = n + sum(n-1), sum(0)=0
        nop
        ta 0
        nop
sum:    save %sp, -96, %sp
        tst %i0
        be base
        nop
        sub %i0, 1, %o0
        call sum
        nop
        add %o0, %i0, %i0
base:   ret
        restore
)",
                            &system);
    EXPECT_EQ(r.exit, RunResult::Exit::kExited);
    EXPECT_EQ(r.exit_code, 78u);   // 1+2+...+12
    EXPECT_GT(system->stats().lookup("core.window_spills"), 0u);
    EXPECT_GT(system->stats().lookup("core.window_fills"), 0u);
}

TEST(Core, RestoreWithoutFrameTraps)
{
    const RunResult r = run(R"(
        restore
        ta 0
        nop
)");
    EXPECT_EQ(r.exit, RunResult::Exit::kCoreTrap);
    EXPECT_EQ(r.trap.kind, TrapKind::kWindowError);
}

TEST(Core, LoadStoreWidths)
{
    const RunResult r = run(R"(
        set buf, %l0
        set 0x11223344, %l1
        st %l1, [%l0]
        ldub [%l0+1], %o0   ; 0x22
        lduh [%l0+2], %o1   ; 0x3344
        add %o0, %o1, %o0
        stb %o0, [%l0+4]
        sth %o0, [%l0+6]
        ld [%l0+4], %o0
        ta 0
        nop
        .align 4
buf:    .word 0, 0
)");
    // 0x22 + 0x3344 = 0x3366; stb writes 0x66, sth writes 0x3366
    EXPECT_EQ(r.exit_code, 0x66003366u);
}

TEST(Core, MisalignedLoadTraps)
{
    const RunResult r = run(R"(
        set buf, %l0
        ld [%l0+2], %o0
        ta 0
        nop
        .align 4
buf:    .word 0
)");
    EXPECT_EQ(r.exit, RunResult::Exit::kCoreTrap);
    EXPECT_EQ(r.trap.kind, TrapKind::kMemAlign);
}

TEST(Core, DivideByZeroTraps)
{
    const RunResult r = run(R"(
        wr %g0, %y
        mov 5, %o0
        udiv %o0, %g0, %o1
        ta 0
        nop
)");
    EXPECT_EQ(r.exit, RunResult::Exit::kCoreTrap);
    EXPECT_EQ(r.trap.kind, TrapKind::kDivByZero);
}

TEST(Core, IllegalInstructionTraps)
{
    const RunResult r = run(R"(
        .word 0
        ta 0
        nop
)");
    EXPECT_EQ(r.exit, RunResult::Exit::kCoreTrap);
    EXPECT_EQ(r.trap.kind, TrapKind::kIllegalInstr);
}

TEST(Core, YRegisterReadWrite)
{
    const RunResult r = run(R"(
        mov 3, %o1
        wr %o1, %y
        rd %y, %o0
        ta 0
        nop
)");
    EXPECT_EQ(r.exit_code, 3u);
}

TEST(Core, MulDivThroughYRegister)
{
    const RunResult r = run(R"(
        set 100000, %o0
        set 100000, %o1
        umul %o0, %o1, %o2      ; 10^10 = 0x2540BE400
        rd %y, %o3              ; high word = 2
        wr %o3, %y
        mov %o2, %o0
        set 100000, %o1
        udiv %o0, %o1, %o0      ; (y:low)/100000 = 100000
        ta 0
        nop
)");
    EXPECT_EQ(r.exit_code, 100000u);
}

TEST(Core, IndirectJumpThroughRegister)
{
    const RunResult r = run(R"(
        set target, %l0
        jmpl %l0, %g0
        mov 1, %o0          ; delay slot
        mov 2, %o0          ; skipped
target: ta 0
        nop
)");
    EXPECT_EQ(r.exit_code, 1u);
}

TEST(Core, TimingMulDivLatencies)
{
    // 100 umuls back-to-back: each costs 1 + mul_extra cycles.
    System *system = nullptr;
    std::string body = "        mov 1, %o0\n";
    for (int i = 0; i < 100; ++i)
        body += "        umul %o0, %o0, %o0\n";
    body += "        ta 0\n        nop\n";
    const RunResult r = run(body, &system);
    const CoreParams params;
    // 2 set + mov + 100 muls + ta + fetch misses etc.; check the mul
    // contribution dominates and matches the configured latency.
    EXPECT_GE(r.cycles, 100 * (1 + params.mul_extra));
    // Slack covers fetch misses of the ~110-instruction program.
    EXPECT_LE(r.cycles, 100 * (1 + params.mul_extra) + 700);
}

TEST(Core, BaselineIgnoresMonitorOps)
{
    // Monitor pseudo-ops are NOPs (and m.read returns 0) without a
    // FlexCore interface attached.
    const RunResult r = run(R"(
        set buf, %l0
        m.settag %l0, 3
        m.setmtag [%l0], 3
        m.read %o0, 0
        add %o0, 7, %o0
        ta 0
        nop
        .align 4
buf:    .word 0
)");
    EXPECT_EQ(r.exit, RunResult::Exit::kExited);
    EXPECT_EQ(r.exit_code, 7u);
}

TEST(Core, StoreBufferBackpressureCounted)
{
    // A long burst of stores must exceed the 8-entry store buffer.
    System *system = nullptr;
    std::string body = "        set buf, %l0\n";
    for (int i = 0; i < 64; ++i)
        body += "        st %g0, [%l0+" + std::to_string(4 * (i % 8)) +
                "]\n";
    body += "        ta 0\n        nop\n        .align 4\nbuf: .space 64\n";
    const RunResult r = run(body, &system);
    EXPECT_EQ(r.exit, RunResult::Exit::kExited);
    EXPECT_GT(system->stats().lookup("core.sb_wait"), 0u);
}

TEST(Core, InstructionCountExact)
{
    System *system = nullptr;
    const RunResult r = run(R"(
        mov 0, %o0
        add %o0, 1, %o0
        add %o0, 1, %o0
        ta 0
        nop
)",
                            &system);
    // _start: sethi+or (set) = 2, mov, add, add, ta = 6; the final
    // nop after ta never commits (the core drains at the ta).
    EXPECT_EQ(r.instructions, 6u);
    EXPECT_EQ(r.exit_code, 2u);
}

}  // namespace
}  // namespace flexcore
