/** @file WATCH (iWatcher-class) monitor tests. */

#include "monitors/watch.h"

#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "sim/system.h"

namespace flexcore {
namespace {

CommitPacket
mem(Op op, Addr addr)
{
    CommitPacket pkt;
    pkt.di.op = op;
    pkt.di.type = classOf(op);
    pkt.di.valid = true;
    pkt.opcode = static_cast<u8>(pkt.di.type);
    pkt.addr = addr;
    return pkt;
}

CommitPacket
setMode(Addr addr, u8 mode)
{
    CommitPacket pkt;
    pkt.di.op = Op::kCpop1;
    pkt.di.type = kTypeCpop1;
    pkt.di.cpop_fn = CpopFn::kSetMemTag;
    pkt.di.valid = true;
    pkt.opcode = kTypeCpop1;
    pkt.addr = addr;
    pkt.dest = mode;
    return pkt;
}

MonitorResult
feed(WatchMonitor *watch, const CommitPacket &pkt)
{
    MonitorResult r;
    watch->process(pkt, &r);
    return r;
}

TEST(Watch, UnwatchedMemoryIsFree)
{
    WatchMonitor watch;
    EXPECT_FALSE(feed(&watch, mem(Op::kLd, 0x100)).trap);
    EXPECT_FALSE(feed(&watch, mem(Op::kSt, 0x100)).trap);
    EXPECT_EQ(watch.hits(), 0u);
}

TEST(Watch, CountModeCountsWithoutTrapping)
{
    WatchMonitor watch;
    feed(&watch, setMode(0x100, WatchMonitor::kCount));
    EXPECT_FALSE(feed(&watch, mem(Op::kLd, 0x100)).trap);
    EXPECT_FALSE(feed(&watch, mem(Op::kSt, 0x100)).trap);
    EXPECT_FALSE(feed(&watch, mem(Op::kLdub, 0x101)).trap);  // same word
    EXPECT_EQ(watch.hits(), 3u);
}

TEST(Watch, TrapStoreModeIgnoresLoads)
{
    WatchMonitor watch;
    feed(&watch, setMode(0x200, WatchMonitor::kTrapStore));
    EXPECT_FALSE(feed(&watch, mem(Op::kLd, 0x200)).trap);
    const MonitorResult r = feed(&watch, mem(Op::kSt, 0x200));
    EXPECT_TRUE(r.trap);
    EXPECT_STREQ(r.trap_reason, "watchpoint hit (store)");
}

TEST(Watch, TrapAccessModeCatchesLoads)
{
    WatchMonitor watch;
    feed(&watch, setMode(0x300, WatchMonitor::kTrapAccess));
    const MonitorResult r = feed(&watch, mem(Op::kLduh, 0x302));
    EXPECT_TRUE(r.trap);
    EXPECT_STREQ(r.trap_reason, "watchpoint hit (load)");
}

TEST(Watch, ClearRemovesWatchpoint)
{
    WatchMonitor watch;
    feed(&watch, setMode(0x100, WatchMonitor::kTrapAccess));
    CommitPacket clr;
    clr.di.op = Op::kCpop1;
    clr.di.type = kTypeCpop1;
    clr.di.cpop_fn = CpopFn::kClearMemTag;
    clr.di.valid = true;
    clr.opcode = kTypeCpop1;
    clr.addr = 0x100;
    feed(&watch, clr);
    EXPECT_FALSE(feed(&watch, mem(Op::kLd, 0x100)).trap);
}

TEST(Watch, CountersReadableOverBfifo)
{
    WatchMonitor watch;
    feed(&watch, setMode(0x100, WatchMonitor::kCount));
    feed(&watch, mem(Op::kLd, 0x100));
    feed(&watch, mem(Op::kSt, 0x100));
    feed(&watch, mem(Op::kSt, 0x100));
    CommitPacket rd;
    rd.di.op = Op::kCpop1;
    rd.di.type = kTypeCpop1;
    rd.di.cpop_fn = CpopFn::kReadTag;
    rd.di.simm = WatchMonitor::kSelStoreHits;
    rd.di.valid = true;
    rd.opcode = kTypeCpop1;
    const MonitorResult r = feed(&watch, rd);
    EXPECT_TRUE(r.has_bfifo);
    EXPECT_EQ(r.bfifo, 2u);
}

TEST(Watch, EndToEndWhoCorruptsThisVariable)
{
    // The canonical use: watch a variable, find the corrupting store.
    const char *source = R"(
        .org 0x1000
_start: set victim, %l0
        m.setmtag [%l0], 2     ; trap-on-store watchpoint
        ld [%l0], %o0          ; reads are fine
        set buf, %l1
        st %g0, [%l1]          ; unrelated store: fine
        st %g0, [%l0]          ; the corrupting store: trap here
        mov 0, %o0
        ta 0
        nop
        .align 4
victim: .word 42
buf:    .word 0
)";
    SystemConfig config;
    config.monitor = MonitorKind::kWatch;
    config.mode = ImplMode::kFlexFabric;
    System system(config);
    const Program program = Assembler::assembleOrDie(source);
    system.load(program);
    const RunResult result = system.run();
    EXPECT_EQ(result.exit, RunResult::Exit::kMonitorTrap);
    EXPECT_EQ(result.trap_reason, "watchpoint hit (store)");
}

}  // namespace
}  // namespace flexcore
