/** @file SEC monitor unit tests: re-execution and residue checks. */

#include "monitors/sec.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "extensions/registry.h"

namespace flexcore {
namespace {

CommitPacket
aluPkt(Op op, u32 a, u32 b, u32 res)
{
    CommitPacket pkt;
    pkt.di.op = op;
    pkt.di.type = classOf(op);
    pkt.di.valid = true;
    pkt.opcode = static_cast<u8>(pkt.di.type);
    pkt.srcv1 = a;
    pkt.srcv2 = b;
    pkt.res = res;
    return pkt;
}

TEST(Sec, Mod7Correct)
{
    for (u32 v : {0u, 1u, 6u, 7u, 8u, 13u, 14u, 49u, 100u, 0xffffffffu,
                  0x80000000u, 12345678u}) {
        EXPECT_EQ(SecMonitor::mod7(v), v % 7) << v;
    }
}

TEST(Sec, CorrectAluResultsPass)
{
    SecMonitor sec;
    MonitorResult r;
    sec.process(aluPkt(Op::kAdd, 5, 7, 12), &r);
    EXPECT_FALSE(r.trap);
    sec.process(aluPkt(Op::kSub, 5, 7, static_cast<u32>(-2)), &r);
    EXPECT_FALSE(r.trap);
    sec.process(aluPkt(Op::kXor, 0xff, 0x0f, 0xf0), &r);
    EXPECT_FALSE(r.trap);
    sec.process(aluPkt(Op::kSll, 1, 4, 16), &r);
    EXPECT_FALSE(r.trap);
    EXPECT_EQ(sec.errorsDetected(), 0u);
    EXPECT_EQ(sec.checksPerformed(), 4u);
}

TEST(Sec, CorruptedAddTraps)
{
    SecMonitor sec;
    MonitorResult r;
    sec.process(aluPkt(Op::kAdd, 5, 7, 13), &r);   // should be 12
    EXPECT_TRUE(r.trap);
    EXPECT_EQ(sec.errorsDetected(), 1u);
}

TEST(Sec, CorruptedShiftTraps)
{
    SecMonitor sec;
    MonitorResult r;
    sec.process(aluPkt(Op::kSra, 0x80000000, 4, 0x08000000), &r);
    EXPECT_TRUE(r.trap);   // arithmetic shift must sign-extend
}

TEST(Sec, MultiplyResidueCheck)
{
    SecMonitor sec;
    MonitorResult r;
    sec.process(aluPkt(Op::kUmul, 1000, 1000, 1000000), &r);
    EXPECT_FALSE(r.trap);
    // A single-bit corruption changes the mod-7 residue unless the
    // flipped bit contributes a multiple of 7 (power of 2 mod 7 is
    // never 0), so every single-bit flip is caught.
    sec.process(aluPkt(Op::kUmul, 1000, 1000, 1000000 ^ 0x10), &r);
    EXPECT_TRUE(r.trap);
}

TEST(Sec, SignedMultiplyChecked)
{
    SecMonitor sec;
    MonitorResult r;
    const u32 res = static_cast<u32>(-30);
    sec.process(aluPkt(Op::kSmul, static_cast<u32>(-5), 6, res), &r);
    EXPECT_FALSE(r.trap);
}

TEST(Sec, DivisionRecomputation)
{
    SecMonitor sec;
    MonitorResult r;
    sec.process(aluPkt(Op::kUdiv, 100, 7, 14), &r);
    EXPECT_FALSE(r.trap);
    sec.process(aluPkt(Op::kUdiv, 100, 7, 15), &r);
    EXPECT_TRUE(r.trap);
}

TEST(Sec, SingleBitFlipsAlwaysCaughtOnAdds)
{
    // Property: SEC catches every single-bit corruption of an exact
    // re-executed op.
    SecMonitor sec;
    Rng rng(3);
    for (int trial = 0; trial < 200; ++trial) {
        const u32 a = rng.next32();
        const u32 b = rng.next32();
        const u32 good = a + b;
        const u32 bad = good ^ (1u << rng.below(32));
        MonitorResult r;
        sec.process(aluPkt(Op::kAdd, a, b, bad), &r);
        EXPECT_TRUE(r.trap);
    }
}

TEST(Sec, PolicyDisablesTrapButCountsErrors)
{
    SecMonitor sec;
    sec.setPolicy(0);
    MonitorResult r;
    sec.process(aluPkt(Op::kAdd, 1, 1, 3), &r);
    EXPECT_FALSE(r.trap);
    EXPECT_EQ(sec.errorsDetected(), 1u);
}

TEST(Sec, KeepsNoMetaData)
{
    SecMonitor sec;
    EXPECT_EQ(sec.tagBitsPerWord(), 0u);
    MonitorResult r;
    sec.process(aluPkt(Op::kAdd, 1, 2, 3), &r);
    EXPECT_EQ(r.num_ops, 0u);   // never touches the meta cache
}

TEST(Sec, CfgrForwardsAllRegisterWritingClasses)
{
    // SEC forwards every class that writes an integer register (to
    // keep the residue file fresh) and nothing else: stores, branches,
    // traps, and cpops stay ignored.
    Cfgr cfgr;
    ASSERT_TRUE(programCfgr(MonitorKind::kSec, &cfgr));
    for (InstrType type :
         {kTypeAluAdd, kTypeAluSub, kTypeAluLogic, kTypeAluShift,
          kTypeMul, kTypeDiv, kTypeSethi, kTypeLoadWord, kTypeLoadByte,
          kTypeLoadHalf, kTypeCall, kTypeIndirectJump, kTypeSave,
          kTypeRestore, kTypeReadY}) {
        EXPECT_EQ(cfgr.policy(type), ForwardPolicy::kAlways)
            << static_cast<int>(type);
    }
    for (InstrType type :
         {kTypeStoreWord, kTypeStoreByte, kTypeStoreHalf, kTypeBranch,
          kTypeWriteY, kTypeCpop1, kTypeCpop2, kTypeTrap}) {
        EXPECT_EQ(cfgr.policy(type), ForwardPolicy::kIgnore)
            << static_cast<int>(type);
    }
}

TEST(Sec, ResidueCheckCatchesRegisterFlip)
{
    SecMonitor sec;
    MonitorResult r;

    // An add writes phys reg 17 with value 12; SEC records mod7(12)=5.
    CommitPacket wr = aluPkt(Op::kAdd, 5, 7, 12);
    wr.dest = 17;
    sec.process(wr, &r);
    EXPECT_FALSE(r.trap);

    // Clean re-use of reg 17 passes the residue check.
    CommitPacket use = aluPkt(Op::kAdd, 12, 1, 13);
    use.src1 = 17;
    sec.process(use, &r);
    EXPECT_FALSE(r.trap);

    // Now flip a stored bit: the operand value the core read (12^8=4)
    // recomputes consistently in the checker ALU, but its residue no
    // longer matches the recorded one — only the residue check can
    // catch this.
    sec.regTags().flipBit(0, 0);   // %g0 flips are ignored
    CommitPacket corrupted = aluPkt(Op::kAdd, 12 ^ 8, 1, (12 ^ 8) + 1);
    corrupted.src1 = 17;
    sec.process(corrupted, &r);
    EXPECT_TRUE(r.trap);
    EXPECT_STREQ(r.trap_reason, "register residue mismatch (soft error)");
}

TEST(Sec, UnknownResidueIsNeverChecked)
{
    // Registers never written through a forwarded packet have no
    // recorded residue; reads of them must not trap.
    SecMonitor sec;
    MonitorResult r;
    CommitPacket use = aluPkt(Op::kAdd, 0xdeadbeef, 1, 0xdeadbef0);
    use.src1 = 99;
    sec.process(use, &r);
    EXPECT_FALSE(r.trap);
}

TEST(Sec, CallRecordsLinkAddressResidue)
{
    // call writes its own PC to the link register while RES carries
    // the branch target; the residue must come from the PC.
    SecMonitor sec;
    MonitorResult r;
    CommitPacket call;
    call.di.op = Op::kCall;
    call.di.type = kTypeCall;
    call.di.valid = true;
    call.pc = 0x1008;
    call.res = 0x2000;   // target
    call.dest = 15;
    sec.process(call, &r);
    EXPECT_FALSE(r.trap);

    CommitPacket use = aluPkt(Op::kAdd, 0x1008, 8, 0x1010);
    use.src1 = 15;
    sec.process(use, &r);
    EXPECT_FALSE(r.trap);

    CommitPacket bad = aluPkt(Op::kAdd, 0x1008 ^ 4, 8, (0x1008 ^ 4) + 8);
    bad.src1 = 15;
    sec.process(bad, &r);
    EXPECT_TRUE(r.trap);
}

}  // namespace
}  // namespace flexcore
