/** @file SEC monitor unit tests: re-execution and residue checks. */

#include "monitors/sec.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace flexcore {
namespace {

CommitPacket
aluPkt(Op op, u32 a, u32 b, u32 res)
{
    CommitPacket pkt;
    pkt.di.op = op;
    pkt.di.type = classOf(op);
    pkt.di.valid = true;
    pkt.opcode = static_cast<u8>(pkt.di.type);
    pkt.srcv1 = a;
    pkt.srcv2 = b;
    pkt.res = res;
    return pkt;
}

TEST(Sec, Mod7Correct)
{
    for (u32 v : {0u, 1u, 6u, 7u, 8u, 13u, 14u, 49u, 100u, 0xffffffffu,
                  0x80000000u, 12345678u}) {
        EXPECT_EQ(SecMonitor::mod7(v), v % 7) << v;
    }
}

TEST(Sec, CorrectAluResultsPass)
{
    SecMonitor sec;
    MonitorResult r;
    sec.process(aluPkt(Op::kAdd, 5, 7, 12), &r);
    EXPECT_FALSE(r.trap);
    sec.process(aluPkt(Op::kSub, 5, 7, static_cast<u32>(-2)), &r);
    EXPECT_FALSE(r.trap);
    sec.process(aluPkt(Op::kXor, 0xff, 0x0f, 0xf0), &r);
    EXPECT_FALSE(r.trap);
    sec.process(aluPkt(Op::kSll, 1, 4, 16), &r);
    EXPECT_FALSE(r.trap);
    EXPECT_EQ(sec.errorsDetected(), 0u);
    EXPECT_EQ(sec.checksPerformed(), 4u);
}

TEST(Sec, CorruptedAddTraps)
{
    SecMonitor sec;
    MonitorResult r;
    sec.process(aluPkt(Op::kAdd, 5, 7, 13), &r);   // should be 12
    EXPECT_TRUE(r.trap);
    EXPECT_EQ(sec.errorsDetected(), 1u);
}

TEST(Sec, CorruptedShiftTraps)
{
    SecMonitor sec;
    MonitorResult r;
    sec.process(aluPkt(Op::kSra, 0x80000000, 4, 0x08000000), &r);
    EXPECT_TRUE(r.trap);   // arithmetic shift must sign-extend
}

TEST(Sec, MultiplyResidueCheck)
{
    SecMonitor sec;
    MonitorResult r;
    sec.process(aluPkt(Op::kUmul, 1000, 1000, 1000000), &r);
    EXPECT_FALSE(r.trap);
    // A single-bit corruption changes the mod-7 residue unless the
    // flipped bit contributes a multiple of 7 (power of 2 mod 7 is
    // never 0), so every single-bit flip is caught.
    sec.process(aluPkt(Op::kUmul, 1000, 1000, 1000000 ^ 0x10), &r);
    EXPECT_TRUE(r.trap);
}

TEST(Sec, SignedMultiplyChecked)
{
    SecMonitor sec;
    MonitorResult r;
    const u32 res = static_cast<u32>(-30);
    sec.process(aluPkt(Op::kSmul, static_cast<u32>(-5), 6, res), &r);
    EXPECT_FALSE(r.trap);
}

TEST(Sec, DivisionRecomputation)
{
    SecMonitor sec;
    MonitorResult r;
    sec.process(aluPkt(Op::kUdiv, 100, 7, 14), &r);
    EXPECT_FALSE(r.trap);
    sec.process(aluPkt(Op::kUdiv, 100, 7, 15), &r);
    EXPECT_TRUE(r.trap);
}

TEST(Sec, SingleBitFlipsAlwaysCaughtOnAdds)
{
    // Property: SEC catches every single-bit corruption of an exact
    // re-executed op.
    SecMonitor sec;
    Rng rng(3);
    for (int trial = 0; trial < 200; ++trial) {
        const u32 a = rng.next32();
        const u32 b = rng.next32();
        const u32 good = a + b;
        const u32 bad = good ^ (1u << rng.below(32));
        MonitorResult r;
        sec.process(aluPkt(Op::kAdd, a, b, bad), &r);
        EXPECT_TRUE(r.trap);
    }
}

TEST(Sec, PolicyDisablesTrapButCountsErrors)
{
    SecMonitor sec;
    sec.setPolicy(0);
    MonitorResult r;
    sec.process(aluPkt(Op::kAdd, 1, 1, 3), &r);
    EXPECT_FALSE(r.trap);
    EXPECT_EQ(sec.errorsDetected(), 1u);
}

TEST(Sec, KeepsNoMetaData)
{
    SecMonitor sec;
    EXPECT_EQ(sec.tagBitsPerWord(), 0u);
    MonitorResult r;
    sec.process(aluPkt(Op::kAdd, 1, 2, 3), &r);
    EXPECT_EQ(r.num_ops, 0u);   // never touches the meta cache
}

TEST(Sec, CfgrForwardsOnlyAluClasses)
{
    SecMonitor sec;
    Cfgr cfgr;
    sec.configureCfgr(&cfgr);
    EXPECT_EQ(cfgr.policy(kTypeAluAdd), ForwardPolicy::kAlways);
    EXPECT_EQ(cfgr.policy(kTypeMul), ForwardPolicy::kAlways);
    EXPECT_EQ(cfgr.policy(kTypeDiv), ForwardPolicy::kAlways);
    EXPECT_EQ(cfgr.policy(kTypeLoadWord), ForwardPolicy::kIgnore);
    EXPECT_EQ(cfgr.policy(kTypeStoreWord), ForwardPolicy::kIgnore);
    EXPECT_EQ(cfgr.policy(kTypeCpop1), ForwardPolicy::kIgnore);
}

}  // namespace
}  // namespace flexcore
