/**
 * @file
 * Determinism tests for the parallel campaign runner: identical
 * results for repeated runs, for any worker count, and per-job seeds
 * that depend only on the job key — never on submission order.
 */

#include "sim/campaign.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/threadpool.h"

namespace flexcore {
namespace {

SweepSpec
smallSpec()
{
    SweepSpec spec;
    spec.name = "test_grid";
    const auto suite = benchmarkSuite(WorkloadScale::kTest);
    // Two workloads keep the grid fast while still exercising the
    // merge across several jobs per worker.
    spec.workloads = {suite[0], suite[5]};
    spec.monitors = {MonitorKind::kUmc, MonitorKind::kDift};
    spec.modes = {ImplMode::kBaseline, ImplMode::kFlexFabric};
    spec.fifo_depths = {16, 64};
    return spec;
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 1000; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1000);

    // The pool is reusable after a wait().
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1100);
}

TEST(ThreadPool, TasksMaySubmitMoreTasks)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&] {
            ++count;
            pool.submit([&count] { ++count; });
        });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 16);
}

TEST(Campaign, JobSeedIsAPureFunctionOfTheKey)
{
    EXPECT_EQ(jobSeed("sha|umc|flexcore|p2|f64|d32768"),
              jobSeed("sha|umc|flexcore|p2|f64|d32768"));
    EXPECT_NE(jobSeed("sha|umc|flexcore|p2|f64|d32768"),
              jobSeed("sha|umc|flexcore|p2|f16|d32768"));
    EXPECT_NE(jobSeed("a"), jobSeed("b"));
}

TEST(Campaign, ExpandIsSortedUniqueAndSeeded)
{
    const auto jobs = expandSweep(smallSpec());
    ASSERT_FALSE(jobs.empty());
    // 2 workloads x (1 baseline + 2 monitors x 2 depths) = 10 jobs.
    EXPECT_EQ(jobs.size(), 10u);
    for (size_t i = 0; i < jobs.size(); ++i) {
        if (i > 0)
            EXPECT_LT(jobs[i - 1].key, jobs[i].key);
        EXPECT_EQ(jobs[i].config.fault_seed, jobSeed(jobs[i].key));
    }
}

TEST(Campaign, DuplicateGridPointsCollapse)
{
    SweepSpec spec = smallSpec();
    // Period 0 resolves to defaultFlexPeriod(umc|dift) == 2, so the
    // explicit 2 is the same grid point.
    spec.flex_periods = {0, 2};
    EXPECT_EQ(expandSweep(spec).size(), expandSweep(smallSpec()).size());
}

TEST(Campaign, SeedsAreIndependentOfSubmissionOrder)
{
    auto jobs = expandSweep(smallSpec());
    std::vector<u64> seeds_sorted;
    for (const CampaignJob &job : jobs)
        seeds_sorted.push_back(job.config.fault_seed);

    // Reverse the submission order: the per-key seeds cannot move.
    std::reverse(jobs.begin(), jobs.end());
    for (size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(jobs[i].config.fault_seed,
                  seeds_sorted[jobs.size() - 1 - i]);
        EXPECT_EQ(jobs[i].config.fault_seed, jobSeed(jobs[i].key));
    }
}

TEST(Campaign, RepeatedRunsAreIdentical)
{
    const auto jobs = expandSweep(smallSpec());
    CampaignOptions opts;
    opts.jobs = 4;
    const auto first = runCampaign(jobs, opts);
    const auto second = runCampaign(jobs, opts);
    EXPECT_EQ(campaignJson("test_grid", first),
              campaignJson("test_grid", second));
}

TEST(Campaign, SerialAndParallelJsonAreBitIdentical)
{
    const auto jobs = expandSweep(smallSpec());

    CampaignOptions serial;
    serial.jobs = 1;
    const std::string serial_json =
        campaignJson("test_grid", runCampaign(jobs, serial));

    CampaignOptions parallel;
    parallel.jobs = 8;
    const std::string parallel_json =
        campaignJson("test_grid", runCampaign(jobs, parallel));

    EXPECT_EQ(serial_json, parallel_json);
}

TEST(Campaign, SubmissionOrderDoesNotChangeMergedResults)
{
    auto jobs = expandSweep(smallSpec());
    CampaignOptions opts;
    opts.jobs = 4;
    const std::string sorted_json =
        campaignJson("test_grid", runCampaign(jobs, opts));

    std::reverse(jobs.begin(), jobs.end());
    const std::string reversed_json =
        campaignJson("test_grid", runCampaign(jobs, opts));
    EXPECT_EQ(sorted_json, reversed_json);
}

TEST(Campaign, StatPathsEmbedPerConfiguration)
{
    const auto jobs = expandSweep(smallSpec());
    CampaignOptions opts;
    opts.jobs = 4;
    opts.stat_paths = {"core.cycles", "interface.forwarded"};
    const auto results = runCampaign(jobs, opts);

    for (const CampaignResult &row : results) {
        // Every configuration has a core...
        ASSERT_FALSE(row.outcome.stats.empty()) << row.key;
        EXPECT_EQ(row.outcome.stats[0].first, "core.cycles");
        EXPECT_EQ(row.outcome.stats[0].second,
                  row.outcome.result.cycles);
        // ...but only monitored hardware modes have an interface, so
        // baseline rows skip that path instead of failing the run.
        const bool has_iface = row.mode == ImplMode::kFlexFabric ||
                               row.mode == ImplMode::kAsic;
        EXPECT_EQ(row.outcome.stats.size(), has_iface ? 2u : 1u)
            << row.key;
        if (has_iface) {
            EXPECT_EQ(row.outcome.stats[1].first, "interface.forwarded");
            EXPECT_EQ(row.outcome.stats[1].second,
                      row.outcome.forwarded);
        }
    }

    const std::string json = campaignJson("test_grid", results);
    EXPECT_NE(json.find("\"stats\": {\"core.cycles\": "),
              std::string::npos);

    // Embedded stats preserve byte-identity across worker counts.
    CampaignOptions serial = opts;
    serial.jobs = 1;
    EXPECT_EQ(campaignJson("test_grid", runCampaign(jobs, serial)),
              json);
}

TEST(CampaignDeathTest, UnresolvableStatPathIsFatal)
{
    const auto jobs = expandSweep(smallSpec());
    CampaignOptions opts;
    opts.jobs = 2;
    opts.stat_paths = {"core.cycles", "no.such.counter"};
    EXPECT_DEATH(runCampaign(jobs, opts), "no\\.such\\.counter");
}

TEST(Campaign, ResultRowsCarryTheJobIdentity)
{
    const auto results = runCampaign(expandSweep(smallSpec()), {});
    const u32 dcache = SystemConfig{}.core.dcache.size_bytes;
    const std::string key =
        jobKey(results.front().workload, results.front().monitor,
               results.front().mode, results.front().flex_period,
               results.front().fifo_depth, dcache);
    EXPECT_EQ(results.front().key, key);
    EXPECT_NE(findResult(results, key), nullptr);
    EXPECT_EQ(findResult(results, "no|such|key"), nullptr);

    for (const CampaignResult &row : results) {
        EXPECT_EQ(row.seed, jobSeed(row.key));
        EXPECT_EQ(row.outcome.result.exit, RunResult::Exit::kExited);
        EXPECT_GT(row.outcome.result.cycles, 0u);
    }
}

}  // namespace
}  // namespace flexcore
