/** @file REFCNT (GC-support bookkeeping) monitor tests. */

#include "monitors/refcount.h"

#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "sim/system.h"

namespace flexcore {
namespace {

CommitPacket
storePtr(Addr slot, Addr target)
{
    CommitPacket pkt;
    pkt.di.op = Op::kSt;
    pkt.di.type = kTypeStoreWord;
    pkt.di.valid = true;
    pkt.opcode = kTypeStoreWord;
    pkt.addr = slot;
    pkt.res = target;   // RES carries the stored value
    return pkt;
}

CommitPacket
cpop(CpopFn fn, Addr addr)
{
    CommitPacket pkt;
    pkt.di.op = Op::kCpop1;
    pkt.di.type = kTypeCpop1;
    pkt.di.cpop_fn = fn;
    pkt.di.valid = true;
    pkt.opcode = kTypeCpop1;
    pkt.addr = addr;
    return pkt;
}

MonitorResult
feed(RefCountMonitor *rc, const CommitPacket &pkt)
{
    MonitorResult r;
    rc->process(pkt, &r);
    return r;
}

TEST(RefCount, StoresToDeclaredSlotsCount)
{
    RefCountMonitor rc;
    feed(&rc, cpop(CpopFn::kSetMemTag, 0x1000));   // declare slot
    feed(&rc, storePtr(0x1000, 0x8000));           // slot -> obj A
    EXPECT_EQ(rc.refCount(0x8000), 1);
    feed(&rc, cpop(CpopFn::kSetMemTag, 0x1004));
    feed(&rc, storePtr(0x1004, 0x8000));           // second reference
    EXPECT_EQ(rc.refCount(0x8000), 2);
}

TEST(RefCount, OverwriteMovesReference)
{
    RefCountMonitor rc;
    feed(&rc, cpop(CpopFn::kSetMemTag, 0x1000));
    feed(&rc, storePtr(0x1000, 0x8000));
    feed(&rc, storePtr(0x1000, 0x9000));   // repoint the slot
    EXPECT_EQ(rc.refCount(0x8000), 0);     // old target released
    EXPECT_EQ(rc.refCount(0x9000), 1);
    EXPECT_EQ(rc.zeroEvents(), 1u);        // obj A became collectable
}

TEST(RefCount, NullStoresDropReferenceOnly)
{
    RefCountMonitor rc;
    feed(&rc, cpop(CpopFn::kSetMemTag, 0x1000));
    feed(&rc, storePtr(0x1000, 0x8000));
    feed(&rc, storePtr(0x1000, 0));        // null it out
    EXPECT_EQ(rc.refCount(0x8000), 0);
    EXPECT_EQ(rc.refCount(0), 0);          // null never counted
}

TEST(RefCount, UndeclaredSlotsIgnored)
{
    RefCountMonitor rc;
    feed(&rc, storePtr(0x2000, 0x8000));   // plain data store
    EXPECT_EQ(rc.refCount(0x8000), 0);
}

TEST(RefCount, SlotRetirementReleasesReference)
{
    RefCountMonitor rc;
    feed(&rc, cpop(CpopFn::kSetMemTag, 0x1000));
    feed(&rc, storePtr(0x1000, 0x8000));
    feed(&rc, cpop(CpopFn::kClearMemTag, 0x1000));   // frame pops
    EXPECT_EQ(rc.refCount(0x8000), 0);
    EXPECT_EQ(rc.zeroEvents(), 1u);
}

TEST(RefCount, ReadCountOverBfifo)
{
    RefCountMonitor rc;
    feed(&rc, cpop(CpopFn::kSetMemTag, 0x1000));
    feed(&rc, storePtr(0x1000, 0x8000));
    const MonitorResult r = feed(&rc, cpop(CpopFn::kReadTag, 0x8000));
    EXPECT_TRUE(r.has_bfifo);
    EXPECT_EQ(r.bfifo, 1u);
}

TEST(RefCount, NeverTraps)
{
    RefCountMonitor rc;
    feed(&rc, cpop(CpopFn::kSetMemTag, 0x1000));
    const MonitorResult r = feed(&rc, storePtr(0x1000, 0x8000));
    EXPECT_FALSE(r.trap);
}

TEST(RefCount, EndToEndPointerGraph)
{
    // Two slots point at one object, then both are repointed; the
    // program reads the counts back at each step.
    const char *source = R"(
        .org 0x1000
_start: set slots, %l0
        set obj_a, %l1
        set obj_b, %l2
        m.setmtag [%l0]        ; declare slot 0
        m.setmtag [%l0+4]      ; declare slot 1
        st %l1, [%l0]          ; slot0 -> A
        st %l1, [%l0+4]        ; slot1 -> A
        m.read %o0, 0          ; count(A) == 2... addr operand below
        nop
        st %l2, [%l0]          ; slot0 -> B  (A: 1)
        st %l2, [%l0+4]        ; slot1 -> B  (A: 0, collectable)
        mov 0, %o0
        ta 0
        nop
        .align 4
slots:  .word 0, 0
obj_a:  .word 1, 2, 3, 4
obj_b:  .word 5, 6, 7, 8
)";
    SystemConfig config;
    config.monitor = MonitorKind::kRefCount;
    config.mode = ImplMode::kFlexFabric;
    System system(config);
    const Program program = Assembler::assembleOrDie(source);
    system.load(program);
    const RunResult result = system.run();
    ASSERT_EQ(result.exit, RunResult::Exit::kExited);

    u32 obj_a = 0, obj_b = 0;
    ASSERT_TRUE(program.lookupSymbol("obj_a", &obj_a));
    ASSERT_TRUE(program.lookupSymbol("obj_b", &obj_b));
    const auto *rc =
        static_cast<RefCountMonitor *>(system.monitor());
    EXPECT_EQ(rc->refCount(obj_a), 0);   // fully released
    EXPECT_EQ(rc->refCount(obj_b), 2);
    EXPECT_GE(rc->zeroEvents(), 1u);
}

}  // namespace
}  // namespace flexcore
