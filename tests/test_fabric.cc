/** @file Fabric timing tests: clock division, pipeline, meta stalls. */

#include "flexcore/fabric.h"

#include <gtest/gtest.h>

#include "extensions/registry.h"
#include "monitors/umc.h"

namespace flexcore {
namespace {

CommitPacket
storePacket(Addr addr)
{
    CommitPacket pkt;
    pkt.opcode = kTypeStoreWord;
    pkt.addr = addr;
    pkt.di.op = Op::kSt;
    pkt.di.type = kTypeStoreWord;
    pkt.di.valid = true;
    return pkt;
}

CommitPacket
loadPacket(Addr addr)
{
    CommitPacket pkt;
    pkt.opcode = kTypeLoadWord;
    pkt.addr = addr;
    pkt.di.op = Op::kLd;
    pkt.di.type = kTypeLoadWord;
    pkt.di.valid = true;
    return pkt;
}

class FabricTest : public ::testing::Test
{
  protected:
    void
    build(u32 period, bool predecode = true, bool bitmask = true)
    {
        iface_ = std::make_unique<FlexInterface>(
            &stats_, FlexInterface::Params{64, 0});
        bus_ = std::make_unique<Bus>(&stats_, SdramTimings{});
        monitor_ = std::make_unique<UmcMonitor>();
        programCfgr(MonitorKind::kUmc, &iface_->cfgr());
        FabricParams params;
        params.period = period;
        params.predecode = predecode;
        params.bitmask_writes = bitmask;
        fabric_ = std::make_unique<Fabric>(&stats_, iface_.get(),
                                           bus_.get(), monitor_.get(),
                                           params);
    }

    void
    tickAll(Cycle cycles)
    {
        for (Cycle i = 0; i < cycles; ++i) {
            bus_->tick();
            fabric_->tick(now_);
            ++now_;
        }
    }

    StatGroup stats_{"test"};
    std::unique_ptr<FlexInterface> iface_;
    std::unique_ptr<Bus> bus_;
    std::unique_ptr<UmcMonitor> monitor_;
    std::unique_ptr<Fabric> fabric_;
    Cycle now_ = 0;
};

TEST_F(FabricTest, ConsumesOnePacketPerFabricCycle)
{
    build(/*period=*/2);
    // Pre-touch the meta line so there are no misses.
    fabric_->metaCache().fill(monitor_->metaAddr(0x100), false);
    for (int i = 0; i < 8; ++i)
        iface_->offer(storePacket(0x100), now_);
    EXPECT_EQ(iface_->fifoSize(), 8u);
    tickAll(8);   // 4 fabric cycles at period 2
    EXPECT_EQ(iface_->fifoSize(), 4u);
    tickAll(8);
    EXPECT_EQ(iface_->fifoSize(), 0u);
}

TEST_F(FabricTest, Period1ConsumesEveryCycle)
{
    build(/*period=*/1);
    fabric_->metaCache().fill(monitor_->metaAddr(0x100), false);
    for (int i = 0; i < 8; ++i)
        iface_->offer(storePacket(0x100), now_);
    tickAll(8);
    EXPECT_EQ(iface_->fifoSize(), 0u);
}

TEST_F(FabricTest, PipelineLatencyDelaysEffects)
{
    build(/*period=*/1);
    fabric_->metaCache().fill(monitor_->metaAddr(0x100), false);
    // An uninitialized load raises TRAP only after the packet exits
    // the monitor pipeline (depth 3 for UMC).
    iface_->offer(loadPacket(0x100), now_);
    tickAll(1);   // dequeued, enters pipe
    EXPECT_FALSE(iface_->trapPending());
    tickAll(monitor_->pipelineDepth());
    EXPECT_TRUE(iface_->trapPending());
}

TEST_F(FabricTest, MetaMissFreezesUntilRefill)
{
    build(/*period=*/1);
    iface_->offer(storePacket(0x100), now_);   // meta miss
    iface_->offer(storePacket(0x100), now_);
    tickAll(1);
    // Frozen: the second packet must wait for the refill (~30 cycles).
    EXPECT_EQ(iface_->fifoSize(), 1u);
    tickAll(5);
    EXPECT_EQ(iface_->fifoSize(), 1u);
    EXPECT_FALSE(fabric_->idle());
    tickAll(40);   // refill done; both packets drain
    EXPECT_EQ(iface_->fifoSize(), 0u);
    EXPECT_GT(fabric_->metaStallCycles(), 0u);
    EXPECT_EQ(fabric_->metaCache().misses(), 1u);
}

TEST_F(FabricTest, IdleReflectsAllState)
{
    build(/*period=*/2);
    EXPECT_TRUE(fabric_->idle());
    fabric_->metaCache().fill(monitor_->metaAddr(0x100), false);
    iface_->offer(storePacket(0x100), now_);
    EXPECT_FALSE(fabric_->idle());
    tickAll(2 * (monitor_->pipelineDepth() + 3));
    EXPECT_TRUE(fabric_->idle());
    EXPECT_TRUE(iface_->empty());
}

TEST_F(FabricTest, PredecodeOffBlocksInput)
{
    // Without core-side pre-decoding each packet occupies the input
    // for an extra fabric cycle: 8 packets need ~16 fabric cycles.
    build(/*period=*/1, /*predecode=*/false);
    fabric_->metaCache().fill(monitor_->metaAddr(0x100), false);
    for (int i = 0; i < 8; ++i)
        iface_->offer(storePacket(0x100), now_);
    tickAll(8);
    EXPECT_GT(iface_->fifoSize(), 0u);
    tickAll(10);
    EXPECT_EQ(iface_->fifoSize(), 0u);
}

TEST_F(FabricTest, BitmaskOffDoublesWriteCost)
{
    // Read-modify-write: each store's tag update needs two cache ops,
    // so 8 stores need ~16 fabric cycles instead of 8.
    build(/*period=*/1, /*predecode=*/true, /*bitmask=*/false);
    fabric_->metaCache().fill(monitor_->metaAddr(0x100), false);
    for (int i = 0; i < 8; ++i)
        iface_->offer(storePacket(0x100), now_);
    tickAll(9);
    EXPECT_GT(iface_->fifoSize(), 0u);
    tickAll(10);
    EXPECT_EQ(iface_->fifoSize(), 0u);
}

TEST_F(FabricTest, CackSignaledOnCompletion)
{
    build(/*period=*/1);
    fabric_->metaCache().fill(monitor_->metaAddr(0x100), false);
    iface_->cfgr().setPolicy(kTypeStoreWord, ForwardPolicy::kWaitAck);
    EXPECT_EQ(iface_->offer(storePacket(0x100), now_),
              CommitAction::kWaitAck);
    EXPECT_FALSE(iface_->ackReady());
    tickAll(1 + monitor_->pipelineDepth() + 1);
    EXPECT_TRUE(iface_->ackReady());
}

TEST_F(FabricTest, DirtyMetaEvictionsWriteBack)
{
    build(/*period=*/1);
    // Dirty more meta lines than the 4KB cache holds (one line per
    // 1 KB of data with 1-bit tags), forcing dirty writebacks onto
    // the bus. Offers retry while the FIFO is full.
    for (Addr addr = 0; addr < 512 * 1024; addr += 1024) {
        while (iface_->offer(storePacket(addr), now_) ==
               CommitAction::kStall) {
            tickAll(1);
        }
    }
    tickAll(100000);
    EXPECT_EQ(iface_->fifoSize(), 0u);
    EXPECT_GT(stats_.lookup("bus.line_writes"), 0u);
    EXPECT_GT(fabric_->metaCache().misses(), 128u);
}

}  // namespace
}  // namespace flexcore
