/**
 * @file
 * System-level integration tests: monitor trap scenarios end to end,
 * drain semantics, 'read from co-processor', and runner helpers.
 */

#include "sim/system.h"

#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "common/stats.h"
#include "sim/sim_request.h"
#include "workloads/scenarios.h"
#include "workloads/workload.h"

namespace flexcore {
namespace {

RunResult
runScenario(const Workload &workload, MonitorKind kind,
            ImplMode mode = ImplMode::kFlexFabric)
{
    SystemConfig config;
    config.monitor = kind;
    config.mode = mode;
    System system(config);
    system.load(Assembler::assembleOrDie(workload.source));
    return system.run();
}

struct Scenario
{
    const char *name;
    Workload (*make)();
    MonitorKind monitor;
    bool want_trap;
};

class ScenarioMatrix : public ::testing::TestWithParam<
                           std::tuple<Scenario, ImplMode>>
{
};

TEST_P(ScenarioMatrix, DetectionBehaviour)
{
    const auto &[scenario, mode] = GetParam();
    const RunResult result =
        runScenario(scenario.make(), scenario.monitor, mode);
    if (scenario.want_trap) {
        EXPECT_EQ(result.exit, RunResult::Exit::kMonitorTrap)
            << result.trap_reason;
    } else {
        EXPECT_EQ(result.exit, RunResult::Exit::kExited)
            << result.trap_reason;
    }
}

const Scenario kScenarios[] = {
    {"dift_attack", scenarioDiftAttack, MonitorKind::kDift, true},
    {"dift_benign", scenarioDiftBenign, MonitorKind::kDift, false},
    {"umc_bug", scenarioUmcBug, MonitorKind::kUmc, true},
    {"umc_clean", scenarioUmcClean, MonitorKind::kUmc, false},
    {"bc_overflow", scenarioBcOverflow, MonitorKind::kBc, true},
    {"bc_clean", scenarioBcClean, MonitorKind::kBc, false},
};

INSTANTIATE_TEST_SUITE_P(
    BothImpls, ScenarioMatrix,
    ::testing::Combine(::testing::ValuesIn(kScenarios),
                       ::testing::Values(ImplMode::kAsic,
                                         ImplMode::kFlexFabric)),
    [](const auto &info) {
        return std::string(std::get<0>(info.param).name) + "_" +
               std::string(implModeName(std::get<1>(info.param)));
    });

TEST(SystemIntegration, SecCatchesInjectedFaults)
{
    SystemConfig config;
    config.monitor = MonitorKind::kSec;
    config.mode = ImplMode::kFlexFabric;
    config.fault_rate = 0.001;
    config.fault_seed = 7;
    System system(config);
    system.load(
        Assembler::assembleOrDie(scenarioSecWorkload().source));
    const RunResult result = system.run();
    EXPECT_EQ(result.exit, RunResult::Exit::kMonitorTrap);
    EXPECT_NE(result.trap_reason.find("soft error"),
              std::string::npos);
}

TEST(SystemIntegration, SecSilentWithoutFaults)
{
    const RunResult result =
        runScenario(scenarioSecWorkload(), MonitorKind::kSec);
    EXPECT_EQ(result.exit, RunResult::Exit::kExited);
}

TEST(SystemIntegration, ReadFromCoprocessorBlocksForValue)
{
    // m.read must wait for the BFIFO value produced by the fabric.
    const char *source = R"(
        .org 0x1000
_start: set 0x003ffff0, %sp
        set buf, %l0
        mov 1, %l1
        st %l1, [%l0]        ; initializes the word (tag := 1)
        m.read %o0, 0        ; UMC: read the init tag back
        ta 0
        nop
        .align 4
buf:    .word 0
)";
    SystemConfig config;
    config.monitor = MonitorKind::kUmc;
    config.mode = ImplMode::kFlexFabric;
    System system(config);
    system.load(Assembler::assembleOrDie(source));
    const RunResult result = system.run();
    EXPECT_EQ(result.exit, RunResult::Exit::kExited);
    // UMC's ReadTag reports the tag at ADDR (= 0 here): the program
    // image starts at 0x1000, so address 0 is uninitialized -> 0.
    EXPECT_EQ(result.exit_code, 0u);
}

TEST(SystemIntegration, CoreTrapDrainsFabricFirst)
{
    // An illegal instruction right after a monitored fault must still
    // report the *monitor* trap (the core waits for EMPTY, §III-C).
    const char *source = R"(
        .org 0x1000
_start: set 0x003ffff0, %sp
        set 0x20000, %l0
        m.clrmtag [%l0]
        ld [%l0], %o1        ; uninitialized read (trap in flight)
        .word 0              ; illegal instruction
)";
    SystemConfig config;
    config.monitor = MonitorKind::kUmc;
    config.mode = ImplMode::kFlexFabric;
    System system(config);
    system.load(Assembler::assembleOrDie(source));
    const RunResult result = system.run();
    EXPECT_EQ(result.exit, RunResult::Exit::kMonitorTrap);
}

TEST(SystemIntegration, ExitWaitsForFabricDrain)
{
    SystemConfig config;
    config.monitor = MonitorKind::kDift;
    config.mode = ImplMode::kFlexFabric;
    System system(config);
    system.load(Assembler::assembleOrDie(R"(
        .org 0x1000
_start: mov 5, %o0
        add %o0, %o0, %o1
        ta 0
        nop
)"));
    const RunResult result = system.run();
    EXPECT_EQ(result.exit, RunResult::Exit::kExited);
    // After the run the interface must be fully drained.
    EXPECT_TRUE(system.iface()->empty());
    EXPECT_TRUE(system.fabric()->idle());
}

TEST(SystemIntegration, BaselineHasNoFlexComponents)
{
    SystemConfig config;
    System system(config);
    EXPECT_EQ(system.iface(), nullptr);
    EXPECT_EQ(system.fabric(), nullptr);
    EXPECT_EQ(system.monitor(), nullptr);
}

TEST(SystemIntegration, MaxCyclesGuardFires)
{
    SystemConfig config;
    config.max_cycles = 1000;
    System system(config);
    system.load(Assembler::assembleOrDie(R"(
        .org 0x1000
_start: ba _start
        nop
)"));
    const RunResult result = system.run();
    EXPECT_EQ(result.exit, RunResult::Exit::kMaxCycles);
    EXPECT_EQ(result.cycles, 1000u);
}

TEST(Runner, GeomeanBasics)
{
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Runner, SimRequestSourceReportsForwardingStats)
{
    SystemConfig config;
    config.monitor = MonitorKind::kUmc;
    config.mode = ImplMode::kFlexFabric;
    const SimOutcome outcome = SimRequest(config).source(R"(
        .org 0x1000
_start: set buf, %l0
        st %g0, [%l0]
        ld [%l0], %o0
        ta 0
        nop
        .align 4
buf:    .word 0
)").run();
    EXPECT_EQ(outcome.result.exit, RunResult::Exit::kExited);
    EXPECT_EQ(outcome.forwarded, 2u);   // the store and the load
    EXPECT_GT(outcome.fwd_fraction, 0.0);
    EXPECT_LT(outcome.fwd_fraction, 1.0);
}

}  // namespace
}  // namespace flexcore
