; Sample program used by the CLI-tool smoke tests.
        .org 0x1000
_start: set 0x003ffff0, %sp
        call main
        nop
        ta 0
        nop

main:   save %sp, -96, %sp
        set msg, %l0
ploop:  ldub [%l0], %o0
        tst %o0
        be done
        nop
        ta 1
        ba ploop
        add %l0, 1, %l0
done:   mov 7, %i0
        ret
        restore

        .align 4
msg:    .asciz "hello from flexcore\n"
