/** @file Unit tests for the statistics registry. */

#include "common/stats.h"

#include <gtest/gtest.h>

namespace flexcore {
namespace {

TEST(Stats, CounterIncrements)
{
    StatGroup group("g");
    Counter counter(&group, "c", "a counter");
    EXPECT_EQ(counter.value(), 0u);
    ++counter;
    counter += 41;
    EXPECT_EQ(counter.value(), 42u);
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(Stats, GroupRegistersCounters)
{
    StatGroup group("g");
    Counter a(&group, "a", "first");
    Counter b(&group, "b", "second");
    ASSERT_EQ(group.counters().size(), 2u);
    EXPECT_EQ(group.counters()[0]->name(), "a");
    EXPECT_EQ(group.counters()[1]->name(), "b");
}

TEST(Stats, HierarchyLookup)
{
    StatGroup root("system");
    StatGroup child("core", &root);
    Counter cycles(&child, "cycles", "total cycles");
    cycles += 123;
    EXPECT_EQ(root.lookup("core.cycles"), 123u);
    EXPECT_EQ(root.lookup("core.nonexistent"), 0u);
    EXPECT_EQ(root.lookup("nonexistent.cycles"), 0u);
}

TEST(Stats, DumpContainsAllCounters)
{
    StatGroup root("system");
    StatGroup child("core", &root);
    Counter cycles(&child, "cycles", "total cycles");
    Counter insts(&child, "insts", "instructions");
    cycles += 7;
    insts += 3;
    const std::string dump = root.dump();
    EXPECT_NE(dump.find("system.core.cycles 7"), std::string::npos);
    EXPECT_NE(dump.find("system.core.insts 3"), std::string::npos);
    EXPECT_NE(dump.find("# instructions"), std::string::npos);
}

TEST(Stats, ResetAllRecurses)
{
    StatGroup root("system");
    StatGroup child("core", &root);
    Counter top(&root, "top", "top-level");
    Counter nested(&child, "nested", "nested");
    top += 5;
    nested += 9;
    root.resetAll();
    EXPECT_EQ(top.value(), 0u);
    EXPECT_EQ(nested.value(), 0u);
}

}  // namespace
}  // namespace flexcore
