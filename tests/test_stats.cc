/** @file Unit tests for the statistics registry. */

#include "common/stats.h"

#include <gtest/gtest.h>

#include "test_json_util.h"

namespace flexcore {
namespace {

TEST(Stats, CounterIncrements)
{
    StatGroup group("g");
    Counter counter(&group, "c", "a counter");
    EXPECT_EQ(counter.value(), 0u);
    ++counter;
    counter += 41;
    EXPECT_EQ(counter.value(), 42u);
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(Stats, GroupRegistersCounters)
{
    StatGroup group("g");
    Counter a(&group, "a", "first");
    Counter b(&group, "b", "second");
    ASSERT_EQ(group.counters().size(), 2u);
    EXPECT_EQ(group.counters()[0]->name(), "a");
    EXPECT_EQ(group.counters()[1]->name(), "b");
}

TEST(Stats, HierarchyLookup)
{
    StatGroup root("system");
    StatGroup child("core", &root);
    Counter cycles(&child, "cycles", "total cycles");
    cycles += 123;
    EXPECT_EQ(root.lookup("core.cycles"), 123u);
    EXPECT_EQ(root.lookup("core.nonexistent"), 0u);
    EXPECT_EQ(root.lookup("nonexistent.cycles"), 0u);
}

TEST(Stats, DumpContainsAllCounters)
{
    StatGroup root("system");
    StatGroup child("core", &root);
    Counter cycles(&child, "cycles", "total cycles");
    Counter insts(&child, "insts", "instructions");
    cycles += 7;
    insts += 3;
    const std::string dump = root.dump();
    EXPECT_NE(dump.find("system.core.cycles 7"), std::string::npos);
    EXPECT_NE(dump.find("system.core.insts 3"), std::string::npos);
    EXPECT_NE(dump.find("# instructions"), std::string::npos);
}

TEST(Stats, ResetAllRecurses)
{
    StatGroup root("system");
    StatGroup child("core", &root);
    Counter top(&root, "top", "top-level");
    Counter nested(&child, "nested", "nested");
    top += 5;
    nested += 9;
    root.resetAll();
    EXPECT_EQ(top.value(), 0u);
    EXPECT_EQ(nested.value(), 0u);
}

TEST(Stats, TryLookupDistinguishesMissingFromZero)
{
    StatGroup root("system");
    StatGroup child("core", &root);
    Counter cycles(&child, "cycles", "zero-valued but present");
    EXPECT_TRUE(root.tryLookup("core.cycles").has_value());
    EXPECT_EQ(*root.tryLookup("core.cycles"), 0u);
    EXPECT_FALSE(root.tryLookup("core.nope").has_value());
    EXPECT_FALSE(root.tryLookup("nope.cycles").has_value());
    EXPECT_FALSE(root.tryLookup("core").has_value());
    // The legacy wrapper still maps both cases to 0.
    EXPECT_EQ(root.lookup("core.cycles"), 0u);
    EXPECT_EQ(root.lookup("core.nope"), 0u);
}

TEST(Stats, HistogramLinearBinEdges)
{
    // 4 bins over [0, 8): widths of exactly 2; an edge value belongs
    // to the upper bin.
    Histogram h(nullptr, "h", "", Histogram::Params{0, 8, 4, false});
    h.add(0);    // bin 0
    h.add(1);    // bin 0
    h.add(2);    // bin 1 (exact edge)
    h.add(7);    // bin 3
    h.add(8);    // overflow (hi is exclusive)
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(2), 0u);
    EXPECT_EQ(h.binCount(3), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 8u);
}

TEST(Stats, HistogramUnderflowBelowLo)
{
    Histogram h(nullptr, "h", "", Histogram::Params{10, 20, 5, false});
    h.add(9);
    h.add(10);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.binCount(0), 1u);
}

TEST(Stats, HistogramLog2Binning)
{
    // lo=1, 4 bins: [1,2) [2,4) [4,8) [8,16); 16 overflows, 0
    // underflows.
    Histogram h(nullptr, "h", "", Histogram::Params{1, 0, 4, true});
    h.add(0);
    h.add(1);
    h.add(2);
    h.add(3);
    h.add(4);
    h.add(7);
    h.add(8);
    h.add(15);
    h.add(16);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(1), 2u);
    EXPECT_EQ(h.binCount(2), 2u);
    EXPECT_EQ(h.binCount(3), 2u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.binLower(0), 1u);
    EXPECT_EQ(h.binLower(1), 2u);
    EXPECT_EQ(h.binLower(2), 4u);
    EXPECT_EQ(h.binLower(3), 8u);
}

TEST(Stats, HistogramPercentilesWithUnitBins)
{
    // Unit-width bins make the percentile exact: the p-th percentile
    // of 1..100 is p itself.
    Histogram h(nullptr, "h", "",
                Histogram::Params{0, 101, 101, false});
    for (u64 v = 1; v <= 100; ++v)
        h.add(v);
    EXPECT_DOUBLE_EQ(h.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(90), 90.0);
    EXPECT_DOUBLE_EQ(h.percentile(99), 99.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(Stats, HistogramResetClearsEverything)
{
    Histogram h(nullptr, "h", "", Histogram::Params{0, 8, 4, false});
    h.add(3);
    h.add(100);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.binCount(1), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(Stats, FormulaEvaluatesLazily)
{
    StatGroup group("g");
    Counter num(&group, "num", "");
    Counter den(&group, "den", "");
    Formula ratio(&group, "ratio", "num/den", [&]() {
        return static_cast<double>(num.value()) /
               static_cast<double>(den.value());
    });
    // 0/0 is NaN; the formula must clamp non-finite values to 0.
    EXPECT_DOUBLE_EQ(ratio.value(), 0.0);
    num += 3;
    den += 4;
    EXPECT_DOUBLE_EQ(ratio.value(), 0.75);
    ASSERT_EQ(group.formulas().size(), 1u);
}

TEST(Stats, JsonIsValidAndSorted)
{
    StatGroup root("system");
    StatGroup zebra("zebra", &root);
    StatGroup alpha("alpha", &root);
    Counter c2(&alpha, "later", "");
    Counter c1(&alpha, "early", "");
    Histogram h(&zebra, "occ", "", Histogram::Params{0, 4, 4, false});
    Formula f(&zebra, "rate", "", []() { return 0.5; });
    c1 += 1;
    c2 += 2;
    h.add(1);
    h.add(3);

    const std::string json = root.json();
    std::string error;
    EXPECT_TRUE(testjson::isValidJson(json, &error)) << error << "\n"
                                                     << json;
    // Groups and counters render in sorted name order regardless of
    // registration order.
    EXPECT_LT(json.find("\"alpha\""), json.find("\"zebra\""));
    EXPECT_LT(json.find("\"early\""), json.find("\"later\""));
    // Sparse bins: [lower, count] pairs for populated bins only.
    EXPECT_NE(json.find("\"bins\": [[1, 1], [3, 1]]"),
              std::string::npos);
}

TEST(Stats, JsonIsByteStableAcrossRenders)
{
    StatGroup root("system");
    StatGroup core("core", &root);
    Counter cycles(&core, "cycles", "");
    Formula ipc(&core, "ipc", "", []() { return 1.0 / 3.0; });
    cycles += 12345;
    EXPECT_EQ(root.json(), root.json());
}

TEST(Stats, JsonEscapesNames)
{
    StatGroup root("sys\"tem");
    Counter c(&root, "a\nb", "");
    const std::string json = root.json();
    std::string error;
    EXPECT_TRUE(testjson::isValidJson(json, &error)) << error << "\n"
                                                     << json;
    EXPECT_NE(json.find("a\\nb"), std::string::npos);
}

TEST(Stats, DumpContainsHistogramAndFormulaLines)
{
    StatGroup root("system");
    StatGroup core("core", &root);
    Histogram h(&core, "occ", "FIFO occupancy",
                Histogram::Params{0, 4, 4, false});
    Formula f(&core, "ipc", "instructions per cycle",
              []() { return 0.25; });
    h.add(2);
    const std::string dump = root.dump();
    EXPECT_NE(dump.find("system.core.occ.count 1"), std::string::npos);
    EXPECT_NE(dump.find("system.core.occ.p50 2"), std::string::npos);
    EXPECT_NE(dump.find("system.core.ipc 0.25"), std::string::npos);
}

}  // namespace
}  // namespace flexcore
