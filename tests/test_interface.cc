/** @file Core-fabric interface tests: CFGR policies, FIFOs, CTRL. */

#include "flexcore/interface.h"

#include <gtest/gtest.h>

namespace flexcore {
namespace {

CommitPacket
packetOfType(InstrType type)
{
    CommitPacket pkt;
    pkt.opcode = static_cast<u8>(type);
    pkt.di.type = type;
    pkt.di.valid = true;
    return pkt;
}

class InterfaceTest : public ::testing::Test
{
  protected:
    StatGroup stats_{"test"};
};

TEST_F(InterfaceTest, CfgrPacksTwoBitsPerClass)
{
    Cfgr cfgr;
    cfgr.setPolicy(kTypeLoadWord, ForwardPolicy::kAlways);
    cfgr.setPolicy(kTypeStoreWord, ForwardPolicy::kIfNotFull);
    cfgr.setPolicy(kTypeCpop1, ForwardPolicy::kWaitAck);
    EXPECT_EQ(cfgr.policy(kTypeLoadWord), ForwardPolicy::kAlways);
    EXPECT_EQ(cfgr.policy(kTypeStoreWord), ForwardPolicy::kIfNotFull);
    EXPECT_EQ(cfgr.policy(kTypeCpop1), ForwardPolicy::kWaitAck);
    EXPECT_EQ(cfgr.policy(kTypeBranch), ForwardPolicy::kIgnore);

    // The packed 64-bit register view round-trips.
    Cfgr copy;
    copy.setValue(cfgr.value());
    EXPECT_EQ(copy.policy(kTypeCpop1), ForwardPolicy::kWaitAck);
}

TEST_F(InterfaceTest, CfgrSetAll)
{
    Cfgr cfgr;
    cfgr.setAll(ForwardPolicy::kAlways);
    for (unsigned t = 0; t < kNumInstrTypes; ++t) {
        EXPECT_EQ(cfgr.policy(static_cast<InstrType>(t)),
                  ForwardPolicy::kAlways);
    }
}

TEST_F(InterfaceTest, IgnoredClassesAreNotForwarded)
{
    FlexInterface iface(&stats_, {4, 0});
    EXPECT_EQ(iface.offer(packetOfType(kTypeBranch), 0),
              CommitAction::kProceed);
    EXPECT_EQ(iface.forwardedCount(), 0u);
    EXPECT_TRUE(iface.fifoSize() == 0);
}

TEST_F(InterfaceTest, AlwaysPolicyStallsWhenFull)
{
    FlexInterface iface(&stats_, {2, 0});
    iface.cfgr().setPolicy(kTypeLoadWord, ForwardPolicy::kAlways);
    EXPECT_EQ(iface.offer(packetOfType(kTypeLoadWord), 0),
              CommitAction::kProceed);
    EXPECT_EQ(iface.offer(packetOfType(kTypeLoadWord), 0),
              CommitAction::kProceed);
    EXPECT_EQ(iface.offer(packetOfType(kTypeLoadWord), 0),
              CommitAction::kStall);
    EXPECT_EQ(iface.stallCycles(), 1u);
    EXPECT_EQ(iface.forwardedCount(), 2u);
}

TEST_F(InterfaceTest, IfNotFullPolicyDropsWhenFull)
{
    FlexInterface iface(&stats_, {1, 0});
    iface.cfgr().setPolicy(kTypeLoadWord, ForwardPolicy::kIfNotFull);
    EXPECT_EQ(iface.offer(packetOfType(kTypeLoadWord), 0),
              CommitAction::kProceed);
    EXPECT_EQ(iface.offer(packetOfType(kTypeLoadWord), 0),
              CommitAction::kProceed);   // dropped, not stalled
    EXPECT_EQ(iface.droppedCount(), 1u);
    EXPECT_EQ(iface.forwardedCount(), 1u);
}

TEST_F(InterfaceTest, WaitAckRequiresCack)
{
    FlexInterface iface(&stats_, {4, 0});
    iface.cfgr().setPolicy(kTypeCpop1, ForwardPolicy::kWaitAck);
    EXPECT_EQ(iface.offer(packetOfType(kTypeCpop1), 0),
              CommitAction::kWaitAck);
    EXPECT_FALSE(iface.ackReady());
    auto popped = iface.popReady(10);
    ASSERT_TRUE(popped.has_value());
    EXPECT_TRUE(popped->wants_ack);
    iface.signalAck();
    EXPECT_TRUE(iface.ackReady());
    iface.consumeAck();
    EXPECT_FALSE(iface.ackReady());
}

TEST_F(InterfaceTest, SynchronizerDelaysVisibility)
{
    FlexInterface iface(&stats_, {4, 2});
    iface.cfgr().setAll(ForwardPolicy::kAlways);
    iface.offer(packetOfType(kTypeLoadWord), 10);
    EXPECT_FALSE(iface.popReady(10).has_value());
    EXPECT_FALSE(iface.popReady(11).has_value());
    EXPECT_TRUE(iface.popReady(12).has_value());
}

TEST_F(InterfaceTest, FifoIsInOrder)
{
    FlexInterface iface(&stats_, {8, 0});
    iface.cfgr().setAll(ForwardPolicy::kAlways);
    for (u32 i = 0; i < 4; ++i) {
        CommitPacket pkt = packetOfType(kTypeLoadWord);
        pkt.pc = 0x1000 + 4 * i;
        iface.offer(pkt, 0);
    }
    for (u32 i = 0; i < 4; ++i) {
        auto popped = iface.popReady(5);
        ASSERT_TRUE(popped.has_value());
        EXPECT_EQ(popped->pc, 0x1000 + 4 * i);
    }
}

TEST_F(InterfaceTest, BfifoDelivery)
{
    FlexInterface iface(&stats_, {4, 0});
    EXPECT_FALSE(iface.popBfifo().has_value());
    iface.pushBfifo(0xabcd);
    iface.pushBfifo(0x1234);
    EXPECT_EQ(iface.popBfifo().value(), 0xabcdu);
    EXPECT_EQ(iface.popBfifo().value(), 0x1234u);
    EXPECT_FALSE(iface.popBfifo().has_value());
}

TEST_F(InterfaceTest, TrapStickyUntilPack)
{
    FlexInterface iface(&stats_, {4, 0});
    EXPECT_FALSE(iface.trapPending());
    iface.raiseTrap(0x2000);
    EXPECT_TRUE(iface.trapPending());
    EXPECT_EQ(iface.trapPc(), 0x2000u);
    iface.raiseTrap(0x3000);   // first trap's PC is kept
    EXPECT_EQ(iface.trapPc(), 0x2000u);
    iface.ackTrap();
    EXPECT_FALSE(iface.trapPending());
}

TEST_F(InterfaceTest, EmptyTracksFifoAndFabric)
{
    FlexInterface iface(&stats_, {4, 0});
    iface.cfgr().setAll(ForwardPolicy::kAlways);
    EXPECT_TRUE(iface.empty());
    iface.offer(packetOfType(kTypeLoadWord), 0);
    EXPECT_FALSE(iface.empty());
    (void)iface.popReady(1);
    iface.setFabricIdle(false);   // packet now in the pipeline
    EXPECT_FALSE(iface.empty());
    iface.setFabricIdle(true);
    EXPECT_TRUE(iface.empty());
}

TEST_F(InterfaceTest, PerTypeForwardCounts)
{
    FlexInterface iface(&stats_, {8, 0});
    iface.cfgr().setAll(ForwardPolicy::kAlways);
    iface.offer(packetOfType(kTypeLoadWord), 0);
    iface.offer(packetOfType(kTypeLoadWord), 0);
    iface.offer(packetOfType(kTypeStoreWord), 0);
    EXPECT_EQ(iface.forwardedOfType(kTypeLoadWord), 2u);
    EXPECT_EQ(iface.forwardedOfType(kTypeStoreWord), 1u);
    EXPECT_EQ(iface.forwardedOfType(kTypeBranch), 0u);
}

TEST_F(InterfaceTest, PacketFieldWidthsMatchTableII)
{
    // The FFIFO entry carries PC, INST, ADDR, RES, SRCV1, SRCV2 (32b
    // each), COND (4), BRANCH (1), OPCODE (5), DECODE (32), EXTRA (32),
    // SRC1/SRC2/DEST (9 each) = 293 bits.
    EXPECT_EQ(ffifoEntryBits(), 293u);
    unsigned cfgr_bits = 0;
    for (const PacketFieldSpec &spec : packetFieldSpecs()) {
        if (spec.module == "CFGR")
            cfgr_bits += spec.bits;
    }
    EXPECT_EQ(cfgr_bits, 64u);   // 2 bits x 32 instruction types
}

}  // namespace
}  // namespace flexcore
