/** @file ALU tests: arithmetic, condition codes, mul/div, faults. */

#include "core/alu.h"

#include <gtest/gtest.h>

#include "common/bitutil.h"

namespace flexcore {
namespace {

TEST(Alu, AddAndFlags)
{
    Alu alu;
    AluResult r = alu.execute(Op::kAddcc, 1, 2, 0);
    EXPECT_EQ(r.value, 3u);
    EXPECT_FALSE(r.icc.n);
    EXPECT_FALSE(r.icc.z);
    EXPECT_FALSE(r.icc.v);
    EXPECT_FALSE(r.icc.c);

    r = alu.execute(Op::kAddcc, 0xffffffff, 1, 0);
    EXPECT_EQ(r.value, 0u);
    EXPECT_TRUE(r.icc.z);
    EXPECT_TRUE(r.icc.c);
    EXPECT_FALSE(r.icc.v);

    r = alu.execute(Op::kAddcc, 0x7fffffff, 1, 0);
    EXPECT_TRUE(r.icc.n);
    EXPECT_TRUE(r.icc.v);   // signed overflow
}

TEST(Alu, SubAndBorrow)
{
    Alu alu;
    AluResult r = alu.execute(Op::kSubcc, 5, 7, 0);
    EXPECT_EQ(r.value, static_cast<u32>(-2));
    EXPECT_TRUE(r.icc.n);
    EXPECT_TRUE(r.icc.c);   // borrow

    r = alu.execute(Op::kSubcc, 7, 7, 0);
    EXPECT_TRUE(r.icc.z);
    EXPECT_FALSE(r.icc.c);

    r = alu.execute(Op::kSubcc, 0x80000000, 1, 0);
    EXPECT_TRUE(r.icc.v);   // signed overflow
}

TEST(Alu, LogicOps)
{
    Alu alu;
    EXPECT_EQ(alu.execute(Op::kAnd, 0xff00ff00, 0x0ff00ff0, 0).value,
              0x0f000f00u);
    EXPECT_EQ(alu.execute(Op::kOr, 0xf0, 0x0f, 0).value, 0xffu);
    EXPECT_EQ(alu.execute(Op::kXor, 0xff, 0x0f, 0).value, 0xf0u);
    EXPECT_EQ(alu.execute(Op::kAndn, 0xff, 0x0f, 0).value, 0xf0u);
    EXPECT_EQ(alu.execute(Op::kOrn, 0x00, 0xfffffff0, 0).value, 0xfu);
    EXPECT_EQ(alu.execute(Op::kXnor, 0xff, 0xff, 0).value,
              0xffffffffu);
}

TEST(Alu, Shifts)
{
    Alu alu;
    EXPECT_EQ(alu.execute(Op::kSll, 1, 31, 0).value, 0x80000000u);
    EXPECT_EQ(alu.execute(Op::kSrl, 0x80000000, 31, 0).value, 1u);
    EXPECT_EQ(alu.execute(Op::kSra, 0x80000000, 31, 0).value,
              0xffffffffu);
    // Shift count uses only the low 5 bits.
    EXPECT_EQ(alu.execute(Op::kSll, 1, 33, 0).value, 2u);
}

TEST(Alu, MultiplyWritesY)
{
    Alu alu;
    AluResult r = alu.execute(Op::kUmul, 0xffffffff, 2, 0);
    EXPECT_EQ(r.value, 0xfffffffeu);
    EXPECT_TRUE(r.writes_y);
    EXPECT_EQ(r.y_out, 1u);

    r = alu.execute(Op::kSmul, static_cast<u32>(-3), 4, 0);
    EXPECT_EQ(r.value, static_cast<u32>(-12));
    EXPECT_EQ(r.y_out, 0xffffffffu);   // sign extension
}

TEST(Alu, DivideUsesYAsHighWord)
{
    Alu alu;
    AluResult r = alu.execute(Op::kUdiv, 100, 7, 0);
    EXPECT_EQ(r.value, 14u);
    // (1 << 32 | 0) / 2^16 with Y=1
    r = alu.execute(Op::kUdiv, 0, 0x10000, 1);
    EXPECT_EQ(r.value, 0x10000u);
}

TEST(Alu, DivideSaturatesOnOverflow)
{
    Alu alu;
    AluResult r = alu.execute(Op::kUdiv, 0, 1, 2);   // 2^33 / 1
    EXPECT_EQ(r.value, 0xffffffffu);
    r = alu.execute(Op::kSdiv, 0, 1, 1);             // 2^32 / 1 signed
    EXPECT_EQ(r.value, 0x7fffffffu);
}

TEST(Alu, DivideByZeroFlagged)
{
    Alu alu;
    EXPECT_TRUE(alu.execute(Op::kUdiv, 5, 0, 0).div_by_zero);
    EXPECT_TRUE(alu.execute(Op::kSdiv, 5, 0, 0).div_by_zero);
}

TEST(Alu, EvalCondAllSixteen)
{
    Icc zero_set;
    zero_set.z = true;
    Icc neg;
    neg.n = true;
    Icc carry;
    carry.c = true;
    Icc ovf;
    ovf.v = true;
    const Icc clear;

    EXPECT_TRUE(Alu::evalCond(Cond::kA, clear));
    EXPECT_FALSE(Alu::evalCond(Cond::kN, clear));
    EXPECT_TRUE(Alu::evalCond(Cond::kE, zero_set));
    EXPECT_FALSE(Alu::evalCond(Cond::kE, clear));
    EXPECT_TRUE(Alu::evalCond(Cond::kNe, clear));
    EXPECT_TRUE(Alu::evalCond(Cond::kNeg, neg));
    EXPECT_TRUE(Alu::evalCond(Cond::kPos, clear));
    EXPECT_TRUE(Alu::evalCond(Cond::kCs, carry));
    EXPECT_TRUE(Alu::evalCond(Cond::kCc, clear));
    EXPECT_TRUE(Alu::evalCond(Cond::kVs, ovf));
    EXPECT_TRUE(Alu::evalCond(Cond::kVc, clear));
    // signed comparisons: n^v means less-than
    EXPECT_TRUE(Alu::evalCond(Cond::kL, neg));
    EXPECT_TRUE(Alu::evalCond(Cond::kL, ovf));
    EXPECT_FALSE(Alu::evalCond(Cond::kL, clear));
    EXPECT_TRUE(Alu::evalCond(Cond::kGe, clear));
    EXPECT_TRUE(Alu::evalCond(Cond::kG, clear));
    EXPECT_FALSE(Alu::evalCond(Cond::kG, zero_set));
    EXPECT_TRUE(Alu::evalCond(Cond::kLe, zero_set));
    // unsigned: gu = !c && !z, leu = c || z
    EXPECT_TRUE(Alu::evalCond(Cond::kGu, clear));
    EXPECT_FALSE(Alu::evalCond(Cond::kGu, carry));
    EXPECT_TRUE(Alu::evalCond(Cond::kLeu, carry));
    EXPECT_TRUE(Alu::evalCond(Cond::kLeu, zero_set));
}

/** Condition-code consistency property over a value sweep. */
class CompareProperty
    : public ::testing::TestWithParam<std::pair<s32, s32>>
{
};

TEST_P(CompareProperty, BranchesMatchCppComparisons)
{
    const auto [a, b] = GetParam();
    Alu alu;
    const AluResult r = alu.execute(Op::kSubcc, static_cast<u32>(a),
                                    static_cast<u32>(b), 0);
    EXPECT_EQ(Alu::evalCond(Cond::kE, r.icc), a == b);
    EXPECT_EQ(Alu::evalCond(Cond::kNe, r.icc), a != b);
    EXPECT_EQ(Alu::evalCond(Cond::kL, r.icc), a < b);
    EXPECT_EQ(Alu::evalCond(Cond::kLe, r.icc), a <= b);
    EXPECT_EQ(Alu::evalCond(Cond::kG, r.icc), a > b);
    EXPECT_EQ(Alu::evalCond(Cond::kGe, r.icc), a >= b);
    EXPECT_EQ(Alu::evalCond(Cond::kCs, r.icc),
              static_cast<u32>(a) < static_cast<u32>(b));
    EXPECT_EQ(Alu::evalCond(Cond::kGu, r.icc),
              static_cast<u32>(a) > static_cast<u32>(b));
    EXPECT_EQ(Alu::evalCond(Cond::kLeu, r.icc),
              static_cast<u32>(a) <= static_cast<u32>(b));
}

INSTANTIATE_TEST_SUITE_P(
    ValuePairs, CompareProperty,
    ::testing::Values(std::make_pair(0, 0), std::make_pair(1, 2),
                      std::make_pair(2, 1), std::make_pair(-1, 1),
                      std::make_pair(1, -1), std::make_pair(-5, -3),
                      std::make_pair(INT32_MIN, INT32_MAX),
                      std::make_pair(INT32_MAX, INT32_MIN),
                      std::make_pair(INT32_MIN, -1),
                      std::make_pair(INT32_MAX, 1)));

TEST(Alu, FaultInjectionFlipsBits)
{
    Alu alu;
    alu.enableFaultInjection(1.0, 99);   // every op faults
    const AluResult r = alu.execute(Op::kAdd, 1, 2, 0);
    EXPECT_NE(r.value, 3u);
    EXPECT_EQ(popcount32(r.value ^ 3u), 1u);  // exactly one bit flipped
    EXPECT_EQ(alu.faultsInjected(), 1u);
}

TEST(Alu, NoFaultsByDefault)
{
    Alu alu;
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(alu.execute(Op::kAdd, i, i, 0).value,
                  static_cast<u32>(2 * i));
    EXPECT_EQ(alu.faultsInjected(), 0u);
}

}  // namespace
}  // namespace flexcore
