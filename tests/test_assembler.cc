/** @file Two-pass assembler tests: directives, pseudo-ops, fixups. */

#include "assembler/assembler.h"

#include <gtest/gtest.h>

#include "isa/disasm.h"
#include "isa/encoding.h"

namespace flexcore {
namespace {

Program
ok(const std::string &body)
{
    return Assembler::assembleOrDie("        .org 0x1000\n" + body);
}

std::string
failure(const std::string &body)
{
    Assembler assembler;
    Program program;
    EXPECT_FALSE(
        assembler.assemble("        .org 0x1000\n" + body, &program));
    return assembler.errorText();
}

TEST(Assembler, OrgSetsBase)
{
    const Program p = Assembler::assembleOrDie(
        "        .org 0x2000\n        nop\n");
    EXPECT_EQ(p.base(), 0x2000u);
    EXPECT_EQ(p.entry(), 0x2000u);
    EXPECT_EQ(p.wordAt(0x2000), 0x01000000u);
}

TEST(Assembler, StartLabelBecomesEntry)
{
    const Program p = ok("        nop\n_start: nop\n");
    EXPECT_EQ(p.entry(), 0x1004u);
}

TEST(Assembler, ForwardReferencesResolve)
{
    const Program p = ok(R"(
        ba target
        nop
target: nop
)");
    const Instruction branch = decode(p.wordAt(0x1000));
    EXPECT_EQ(branch.op, Op::kBicc);
    EXPECT_EQ(branch.disp, 2);
}

TEST(Assembler, BackwardBranch)
{
    const Program p = ok(R"(
top:    nop
        ba top
        nop
)");
    EXPECT_EQ(decode(p.wordAt(0x1004)).disp, -1);
}

TEST(Assembler, SetExpandsToSethiOr)
{
    const Program p = ok("        set 0x12345678, %o0\n");
    const Instruction hi = decode(p.wordAt(0x1000));
    const Instruction lo = decode(p.wordAt(0x1004));
    EXPECT_EQ(hi.op, Op::kSethi);
    EXPECT_EQ(lo.op, Op::kOr);
    EXPECT_EQ((hi.imm22 << 10) | static_cast<u32>(lo.simm),
              0x12345678u);
}

TEST(Assembler, HiLoModifiers)
{
    const Program p = ok(R"(
        sethi %hi(sym), %o0
        or %o0, %lo(sym), %o0
        .org 0x2abc
sym:    .word 0
)");
    const Instruction hi = decode(p.wordAt(0x1000));
    const Instruction lo = decode(p.wordAt(0x1004));
    EXPECT_EQ((hi.imm22 << 10) | static_cast<u32>(lo.simm), 0x2abcu);
}

TEST(Assembler, PseudoOps)
{
    const Program p = ok(R"(
        mov 5, %o0
        mov %o1, %o2
        clr %o3
        cmp %o0, %o1
        tst %o4
        inc %o5
        dec 2, %o5
        neg %l0
        not %l1
        ret
        retl
)");
    EXPECT_EQ(disassemble(p.wordAt(0x1000)), "or %g0, 5, %o0");
    EXPECT_EQ(disassemble(p.wordAt(0x1004)), "or %g0, %o1, %o2");
    EXPECT_EQ(disassemble(p.wordAt(0x1008)), "or %g0, 0, %o3");
    EXPECT_EQ(decode(p.wordAt(0x100c)).op, Op::kSubcc);
    EXPECT_EQ(decode(p.wordAt(0x1010)).op, Op::kOrcc);
    EXPECT_EQ(disassemble(p.wordAt(0x1014)), "add %o5, 1, %o5");
    EXPECT_EQ(disassemble(p.wordAt(0x1018)), "sub %o5, 2, %o5");
    EXPECT_EQ(disassemble(p.wordAt(0x101c)), "sub %g0, %l0, %l0");
    EXPECT_EQ(disassemble(p.wordAt(0x1020)), "xnor %l1, %g0, %l1");
    const Instruction ret = decode(p.wordAt(0x1024));
    EXPECT_EQ(ret.op, Op::kJmpl);
    EXPECT_EQ(ret.rs1, 31);
    EXPECT_EQ(ret.simm, 8);
    EXPECT_EQ(decode(p.wordAt(0x1028)).rs1, 15);
}

TEST(Assembler, DataDirectives)
{
    const Program p = ok(R"(
        .word 1, 2, 0xdeadbeef
        .half 0x1234, 0x5678
        .byte 1, 2, 3, 4
        .align 8
aligned: .word aligned
        .asciz "hi"
        .space 3
)");
    EXPECT_EQ(p.wordAt(0x1000), 1u);
    EXPECT_EQ(p.wordAt(0x1004), 2u);
    EXPECT_EQ(p.wordAt(0x1008), 0xdeadbeefu);
    EXPECT_EQ(p.wordAt(0x100c), 0x12345678u);   // big-endian halves
    EXPECT_EQ(p.wordAt(0x1010), 0x01020304u);
    u32 aligned_addr = 0;
    ASSERT_TRUE(p.lookupSymbol("aligned", &aligned_addr));
    EXPECT_EQ(aligned_addr % 8, 0u);
    EXPECT_EQ(p.wordAt(aligned_addr), aligned_addr);
}

TEST(Assembler, EquDefinesConstants)
{
    const Program p = ok(R"(
        .equ MAGIC, 0x42
        mov MAGIC, %o0
        .word MAGIC+8
)");
    EXPECT_EQ(decode(p.wordAt(0x1000)).simm, 0x42);
    EXPECT_EQ(p.wordAt(0x1004), 0x4au);
}

TEST(Assembler, MonitorPseudoOps)
{
    const Program p = ok(R"(
        m.settag %o0, 5
        m.clrtag %o1
        m.setmtag [%o2+8], 3
        m.clrmtag [%o3]
        m.policy 1
        m.read %o4, 2
        m.base %o5
)");
    const Instruction settag = decode(p.wordAt(0x1000));
    EXPECT_EQ(settag.op, Op::kCpop1);
    EXPECT_EQ(settag.cpop_fn, CpopFn::kSetRegTag);
    EXPECT_EQ(settag.rs1, 8);
    EXPECT_EQ(settag.rd, 5);   // tag value travels in rd

    const Instruction setm = decode(p.wordAt(0x1008));
    EXPECT_EQ(setm.cpop_fn, CpopFn::kSetMemTag);
    EXPECT_EQ(setm.rs1, 10);
    EXPECT_EQ(setm.simm, 8);
    EXPECT_EQ(setm.rd, 3);

    EXPECT_EQ(decode(p.wordAt(0x100c)).cpop_fn, CpopFn::kClearMemTag);
    EXPECT_EQ(decode(p.wordAt(0x1010)).cpop_fn, CpopFn::kSetPolicy);
    const Instruction read = decode(p.wordAt(0x1014));
    EXPECT_EQ(read.cpop_fn, CpopFn::kReadTag);
    EXPECT_EQ(read.rd, 12);
    EXPECT_EQ(decode(p.wordAt(0x1018)).cpop_fn, CpopFn::kSetBase);
}

TEST(Assembler, ErrorsAreReportedWithLines)
{
    EXPECT_NE(failure("        bogus %o0\n").find("unknown mnemonic"),
              std::string::npos);
    EXPECT_NE(failure("        add %o0, 99999, %o1\n")
                  .find("simm13"),
              std::string::npos);
    EXPECT_NE(failure("        ba missing\n        nop\n")
                  .find("undefined symbol"),
              std::string::npos);
    EXPECT_NE(failure("x: nop\nx: nop\n").find("duplicate label"),
              std::string::npos);
    EXPECT_NE(failure("        .align 3\n").find("power of two"),
              std::string::npos);
    EXPECT_NE(failure("        ld [%o0+99999], %o1\n")
                  .find("simm13"),
              std::string::npos);
}

TEST(Assembler, BranchRangeChecked)
{
    // disp22 covers +/- 8MB; a target beyond must error out.
    Assembler assembler;
    Program program;
    const std::string src = "        .org 0x1000\n"
                            "        ba far\n"
                            "        nop\n"
                            "        .org 0x1000000\n"
                            "far:    nop\n";
    EXPECT_FALSE(assembler.assemble(src, &program));
    EXPECT_NE(assembler.errorText().find("out of range"),
              std::string::npos);
}

TEST(Assembler, AnnulledBranches)
{
    const Program p = ok("        ba,a skip\n        nop\nskip:   nop\n");
    EXPECT_TRUE(decode(p.wordAt(0x1000)).annul);
}

TEST(Assembler, JmplForms)
{
    const Program p = ok(R"(
        jmpl %o0+8, %o7
        jmp %o1
        jmpl %o2+%o3, %g0
)");
    const Instruction a = decode(p.wordAt(0x1000));
    EXPECT_EQ(a.rs1, 8);
    EXPECT_EQ(a.simm, 8);
    EXPECT_EQ(a.rd, 15);
    const Instruction b = decode(p.wordAt(0x1004));
    EXPECT_EQ(b.rs1, 9);
    EXPECT_EQ(b.rd, 0);
    const Instruction c = decode(p.wordAt(0x1008));
    EXPECT_EQ(c.rs1, 10);
    EXPECT_EQ(c.rs2, 11);
    EXPECT_FALSE(c.has_imm);
}

TEST(Assembler, MoreDiagnostics)
{
    EXPECT_NE(failure("        add %o0, %o1\n")
                  .find("expected register operand 3"),
              std::string::npos);
    EXPECT_NE(failure("        ld %o0, %o1\n")
                  .find("expected memory operand"),
              std::string::npos);
    EXPECT_NE(failure("        st [%o0], %o1\n")
                  .find("expected register"),
              std::string::npos);
    EXPECT_NE(failure("        .byte banana\n").find("constant"),
              std::string::npos);
    EXPECT_NE(failure("        .org 0x2000\n        nop\n"
                      "        .org 0x1800\n        nop\n")
                  .find("backwards"),
              std::string::npos);
    EXPECT_NE(failure("        m.setmtag [%o0+300], 1\n")
                  .find("simm9"),
              std::string::npos);
    EXPECT_NE(failure("        .asciz 42\n").find("string"),
              std::string::npos);
    EXPECT_NE(failure("        .bogus 1\n").find("unknown directive"),
              std::string::npos);
}

TEST(Assembler, ErrorsCarryLineNumbers)
{
    Assembler assembler;
    Program program;
    EXPECT_FALSE(assembler.assemble(
        "        nop\n        nop\n        bogus\n", &program));
    ASSERT_FALSE(assembler.errors().empty());
    EXPECT_EQ(assembler.errors()[0].line, 3);
}

TEST(Assembler, MultipleErrorsAllReported)
{
    Assembler assembler;
    Program program;
    EXPECT_FALSE(assembler.assemble("        bogus1\n"
                                    "        nop\n"
                                    "        bogus2\n",
                                    &program));
    EXPECT_EQ(assembler.errors().size(), 2u);
}

TEST(Assembler, NegativeImmediatesAndExpressions)
{
    const Program p = ok(R"(
        add %o0, -1, %o1
        ld [%o0-16], %o1
        .equ BASE, 0x100
        mov BASE+4-8, %o2
)");
    EXPECT_EQ(decode(p.wordAt(0x1000)).simm, -1);
    EXPECT_EQ(decode(p.wordAt(0x1004)).simm, -16);
    EXPECT_EQ(decode(p.wordAt(0x1008)).simm, 0xfc);
}

TEST(Assembler, RegPlusRegAddressing)
{
    const Program p = ok("        ld [%o0+%o1], %o2\n"
                         "        st %o2, [%l0+%l1]\n");
    const Instruction ld = decode(p.wordAt(0x1000));
    EXPECT_FALSE(ld.has_imm);
    EXPECT_EQ(ld.rs1, 8);
    EXPECT_EQ(ld.rs2, 9);
    const Instruction st = decode(p.wordAt(0x1004));
    EXPECT_EQ(st.rs1, 16);
    EXPECT_EQ(st.rs2, 17);
}

TEST(Assembler, SaveRestoreForms)
{
    const Program p = ok("        save %sp, -96, %sp\n"
                         "        restore\n"
                         "        restore %o0, 1, %o0\n");
    // The canonical SPARC encoding of `save %sp, -96, %sp`.
    EXPECT_EQ(p.wordAt(0x1000), 0x9de3bfa0u);
    const Instruction bare = decode(p.wordAt(0x1004));
    EXPECT_EQ(bare.op, Op::kRestore);
    EXPECT_EQ(bare.rd, 0);
    const Instruction full = decode(p.wordAt(0x1008));
    EXPECT_EQ(full.rs1, 8);
    EXPECT_EQ(full.simm, 1);
}

TEST(Assembler, MultipleLabelsOneAddress)
{
    const Program p = ok("a: b:  nop\n");
    u32 a = 0, b = 0;
    ASSERT_TRUE(p.lookupSymbol("a", &a));
    ASSERT_TRUE(p.lookupSymbol("b", &b));
    EXPECT_EQ(a, b);
}

TEST(Assembler, SymbolArithmeticInWords)
{
    const Program p = ok(R"(
tab:    .word 1, 2, 3
        .word tab+8
)");
    EXPECT_EQ(p.wordAt(0x100c), 0x1008u);
}

}  // namespace
}  // namespace flexcore
