/** @file Disassembler tests, including assembler round-trips. */

#include "isa/disasm.h"

#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "common/rng.h"
#include "isa/encoding.h"

namespace flexcore {
namespace {

TEST(Disasm, RepresentativeStrings)
{
    Instruction add;
    add.op = Op::kAdd;
    add.rd = 10;   // %o2
    add.rs1 = 8;   // %o0
    add.rs2 = 9;   // %o1
    EXPECT_EQ(disassemble(decode(encode(add))), "add %o0, %o1, %o2");

    Instruction sub;
    sub.op = Op::kSub;
    sub.rd = 16;
    sub.rs1 = 16;
    sub.has_imm = true;
    sub.simm = -4;
    EXPECT_EQ(disassemble(decode(encode(sub))), "sub %l0, -4, %l0");

    EXPECT_EQ(disassemble(0x01000000u), "nop");
}

TEST(Disasm, MemoryOperands)
{
    Instruction ld;
    ld.op = Op::kLd;
    ld.rd = 9;
    ld.rs1 = 14;
    ld.has_imm = true;
    ld.simm = 8;
    EXPECT_EQ(disassemble(decode(encode(ld))), "ld [%o6+8], %o1");

    Instruction st;
    st.op = Op::kSt;
    st.rd = 9;
    st.rs1 = 8;
    st.rs2 = 10;
    EXPECT_EQ(disassemble(decode(encode(st))), "st %o1, [%o0+%o2]");
}

TEST(Disasm, BranchTargetsUsePc)
{
    Instruction branch;
    branch.op = Op::kBicc;
    branch.cond = Cond::kNe;
    branch.disp = 4;   // +16 bytes
    EXPECT_EQ(disassemble(decode(encode(branch)), 0x1000),
              "bne 0x1010");

    branch.annul = true;
    EXPECT_EQ(disassemble(decode(encode(branch)), 0x1000),
              "bne,a 0x1010");
}

TEST(Disasm, InvalidRendersGracefully)
{
    const std::string text = disassemble(0u);
    EXPECT_NE(text.find("invalid"), std::string::npos);
}

TEST(Disasm, SpecialForms)
{
    Instruction rdy;
    rdy.op = Op::kRdy;
    rdy.rd = 8;
    EXPECT_EQ(disassemble(decode(encode(rdy))), "rd %y, %o0");

    Instruction wry;
    wry.op = Op::kWry;
    wry.rs1 = 9;
    EXPECT_EQ(disassemble(decode(encode(wry))), "wr %o1, %y");

    Instruction ta;
    ta.op = Op::kTicc;
    ta.cond = Cond::kA;
    ta.has_imm = true;
    ta.simm = 0;
    EXPECT_EQ(disassemble(decode(encode(ta))), "ta 0");
}

/**
 * Property: disassembling an encoded instruction yields text the
 * assembler accepts, and re-assembling reproduces the original word.
 */
TEST(Disasm, AssemblerRoundTrip)
{
    const Op ops[] = {Op::kAdd, Op::kSubcc, Op::kXor, Op::kSll,
                      Op::kUmul, Op::kLd,   Op::kSt,  Op::kLdub};
    for (Op op : ops) {
        Instruction inst;
        inst.op = op;
        inst.rd = 10;
        inst.rs1 = 16;
        inst.has_imm = true;
        inst.simm = 12;
        const u32 word = encode(inst);
        const std::string text = disassemble(decode(word));
        const Program program = Assembler::assembleOrDie(
            "        .org 0x1000\n        " + text + "\n");
        EXPECT_EQ(program.wordAt(0x1000), word) << text;
    }
}

/** Randomized sweep of the same round-trip over operand space. */
class DisasmRoundTripFuzz : public ::testing::TestWithParam<Op>
{
};

TEST_P(DisasmRoundTripFuzz, RandomOperands)
{
    const Op op = GetParam();
    Rng rng(static_cast<u64>(op) * 131 + 7);
    Assembler assembler;
    for (int trial = 0; trial < 60; ++trial) {
        Instruction inst;
        inst.op = op;
        inst.rd = static_cast<u8>(rng.below(32));
        inst.rs1 = static_cast<u8>(rng.below(32));
        if (rng.chance(0.5)) {
            inst.has_imm = true;
            inst.simm = static_cast<s32>(rng.range(0, 8191)) - 4096;
        } else {
            inst.rs2 = static_cast<u8>(rng.below(32));
        }
        const u32 word = encode(inst);
        const std::string text = disassemble(decode(word));
        Program program;
        ASSERT_TRUE(assembler.assemble(
            "        .org 0x1000\n        " + text + "\n", &program))
            << text << "\n"
            << assembler.errorText();
        EXPECT_EQ(program.wordAt(0x1000), word) << text;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Ops, DisasmRoundTripFuzz,
    ::testing::Values(Op::kAdd, Op::kAddcc, Op::kSub, Op::kSubcc,
                      Op::kAnd, Op::kOr, Op::kXor, Op::kAndn,
                      Op::kOrn, Op::kXnor, Op::kSll, Op::kSrl,
                      Op::kSra, Op::kUmul, Op::kSmul, Op::kUdiv,
                      Op::kSdiv, Op::kLd, Op::kLdub, Op::kLduh,
                      Op::kSt, Op::kStb, Op::kSth),
    [](const ::testing::TestParamInfo<Op> &info) {
        return std::string(opName(info.param));
    });

}  // namespace
}  // namespace flexcore
