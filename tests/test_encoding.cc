/** @file Encode/decode tests for the SPARC V8 subset. */

#include "isa/encoding.h"

#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "common/rng.h"
#include "isa/disasm.h"
#include "isa/registers.h"

namespace flexcore {
namespace {

Instruction
alu(Op op, u8 rd, u8 rs1, u8 rs2)
{
    Instruction inst;
    inst.op = op;
    inst.rd = rd;
    inst.rs1 = rs1;
    inst.rs2 = rs2;
    return inst;
}

TEST(Encoding, AddRegisterForm)
{
    const u32 word = encode(alu(Op::kAdd, 3, 1, 2));
    const Instruction decoded = decode(word);
    ASSERT_TRUE(decoded.valid);
    EXPECT_EQ(decoded.op, Op::kAdd);
    EXPECT_EQ(decoded.rd, 3);
    EXPECT_EQ(decoded.rs1, 1);
    EXPECT_EQ(decoded.rs2, 2);
    EXPECT_FALSE(decoded.has_imm);
    EXPECT_EQ(decoded.type, kTypeAluAdd);
}

TEST(Encoding, ImmediateFormSignExtension)
{
    Instruction inst = alu(Op::kSub, 5, 6, 0);
    inst.has_imm = true;
    inst.simm = -4096;
    const Instruction decoded = decode(encode(inst));
    ASSERT_TRUE(decoded.valid);
    EXPECT_TRUE(decoded.has_imm);
    EXPECT_EQ(decoded.simm, -4096);

    inst.simm = 4095;
    EXPECT_EQ(decode(encode(inst)).simm, 4095);
}

TEST(Encoding, SethiCarries22Bits)
{
    Instruction inst;
    inst.op = Op::kSethi;
    inst.rd = 9;
    inst.imm22 = 0x3fffff;
    const Instruction decoded = decode(encode(inst));
    ASSERT_TRUE(decoded.valid);
    EXPECT_EQ(decoded.op, Op::kSethi);
    EXPECT_EQ(decoded.imm22, 0x3fffffu);
    EXPECT_EQ(decoded.rd, 9);
    EXPECT_EQ(decoded.type, kTypeSethi);
}

TEST(Encoding, CanonicalNopIsClassifiedAsNop)
{
    const Instruction nop = decode(0x01000000);
    ASSERT_TRUE(nop.valid);
    EXPECT_EQ(nop.op, Op::kSethi);
    EXPECT_EQ(nop.type, kTypeNop);
    // sethi with a nonzero rd is NOT a nop
    Instruction inst;
    inst.op = Op::kSethi;
    inst.rd = 1;
    inst.imm22 = 0;
    EXPECT_EQ(decode(encode(inst)).type, kTypeSethi);
}

TEST(Encoding, BranchDisplacementAndAnnul)
{
    Instruction inst;
    inst.op = Op::kBicc;
    inst.cond = Cond::kNe;
    inst.annul = true;
    inst.disp = -100;
    const Instruction decoded = decode(encode(inst));
    ASSERT_TRUE(decoded.valid);
    EXPECT_EQ(decoded.op, Op::kBicc);
    EXPECT_EQ(decoded.cond, Cond::kNe);
    EXPECT_TRUE(decoded.annul);
    EXPECT_EQ(decoded.disp, -100);
    EXPECT_EQ(decoded.type, kTypeBranch);
}

TEST(Encoding, CallDisplacement30Bits)
{
    Instruction inst;
    inst.op = Op::kCall;
    inst.disp = 0x1234567;
    const Instruction decoded = decode(encode(inst));
    ASSERT_TRUE(decoded.valid);
    EXPECT_EQ(decoded.op, Op::kCall);
    EXPECT_EQ(decoded.disp, 0x1234567);
    EXPECT_EQ(decoded.rd, 15);   // CALL writes %o7

    inst.disp = -1;
    EXPECT_EQ(decode(encode(inst)).disp, -1);
}

TEST(Encoding, LoadsAndStores)
{
    for (Op op : {Op::kLd, Op::kLdub, Op::kLduh, Op::kSt, Op::kStb,
                  Op::kSth}) {
        Instruction inst;
        inst.op = op;
        inst.rd = 4;
        inst.rs1 = 14;
        inst.has_imm = true;
        inst.simm = -8;
        const Instruction decoded = decode(encode(inst));
        ASSERT_TRUE(decoded.valid) << opName(op);
        EXPECT_EQ(decoded.op, op);
        EXPECT_EQ(decoded.rd, 4);
        EXPECT_EQ(decoded.rs1, 14);
        EXPECT_EQ(decoded.simm, -8);
    }
}

TEST(Encoding, CpopFunctionAndSimm9)
{
    Instruction inst;
    inst.op = Op::kCpop1;
    inst.cpop_fn = CpopFn::kSetMemTag;
    inst.rd = 5;      // tag value slot
    inst.rs1 = 17;
    inst.has_imm = true;
    inst.simm = -256;
    const Instruction decoded = decode(encode(inst));
    ASSERT_TRUE(decoded.valid);
    EXPECT_EQ(decoded.op, Op::kCpop1);
    EXPECT_EQ(decoded.cpop_fn, CpopFn::kSetMemTag);
    EXPECT_EQ(decoded.rd, 5);
    EXPECT_EQ(decoded.rs1, 17);
    EXPECT_EQ(decoded.simm, -256);
    EXPECT_EQ(decoded.type, kTypeCpop1);
}

TEST(Encoding, TiccCondition)
{
    Instruction inst;
    inst.op = Op::kTicc;
    inst.cond = Cond::kA;
    inst.has_imm = true;
    inst.simm = 0;
    const Instruction decoded = decode(encode(inst));
    ASSERT_TRUE(decoded.valid);
    EXPECT_EQ(decoded.op, Op::kTicc);
    EXPECT_EQ(decoded.cond, Cond::kA);
}

TEST(Encoding, InvalidWordsDecodeInvalid)
{
    EXPECT_FALSE(decode(0x00000000).valid);   // op=0, op2=0 (UNIMP)
    // op3 holes in the arithmetic space:
    u32 word = (2u << 30) | (0x2du << 19);    // op3=0x2d unused
    EXPECT_FALSE(decode(word).valid);
    word = (3u << 30) | (0x3fu << 19);        // memory op3 hole
    EXPECT_FALSE(decode(word).valid);
}

TEST(Encoding, WritesRdProperties)
{
    EXPECT_TRUE(decode(encode(alu(Op::kAdd, 3, 1, 2))).writesRd());
    EXPECT_FALSE(decode(encode(alu(Op::kAdd, 0, 1, 2))).writesRd());

    Instruction st;
    st.op = Op::kSt;
    st.rd = 4;
    st.rs1 = 1;
    EXPECT_FALSE(decode(encode(st)).writesRd());

    Instruction ld;
    ld.op = Op::kLd;
    ld.rd = 4;
    ld.rs1 = 1;
    EXPECT_TRUE(decode(encode(ld)).writesRd());
}

/** Property sweep: encode∘decode is identity on all field combos. */
class RoundTrip : public ::testing::TestWithParam<Op>
{
};

TEST_P(RoundTrip, RegisterAndImmediateForms)
{
    const Op op = GetParam();
    Rng rng(static_cast<u64>(op) + 1);
    for (int trial = 0; trial < 50; ++trial) {
        Instruction inst;
        inst.op = op;
        inst.rd = static_cast<u8>(rng.below(32));
        inst.rs1 = static_cast<u8>(rng.below(32));
        if (rng.chance(0.5)) {
            inst.has_imm = true;
            inst.simm = static_cast<s32>(rng.range(0, 8191)) - 4096;
        } else {
            inst.rs2 = static_cast<u8>(rng.below(32));
        }
        const Instruction decoded = decode(encode(inst));
        ASSERT_TRUE(decoded.valid) << opName(op);
        EXPECT_EQ(decoded.op, inst.op);
        EXPECT_EQ(decoded.rd, inst.rd);
        EXPECT_EQ(decoded.rs1, inst.rs1);
        EXPECT_EQ(decoded.has_imm, inst.has_imm);
        if (inst.has_imm)
            EXPECT_EQ(decoded.simm, inst.simm);
        else
            EXPECT_EQ(decoded.rs2, inst.rs2);
        EXPECT_EQ(decoded.type, classOf(op));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllArithMemOps, RoundTrip,
    ::testing::Values(Op::kAdd, Op::kAddcc, Op::kSub, Op::kSubcc,
                      Op::kAnd, Op::kAndcc, Op::kOr, Op::kOrcc,
                      Op::kXor, Op::kXorcc, Op::kAndn, Op::kOrn,
                      Op::kXnor, Op::kSll, Op::kSrl, Op::kSra,
                      Op::kUmul, Op::kSmul, Op::kUmulcc, Op::kSmulcc,
                      Op::kUdiv, Op::kSdiv, Op::kJmpl, Op::kSave,
                      Op::kRestore, Op::kLd, Op::kLdub, Op::kLduh,
                      Op::kSt, Op::kStb, Op::kSth),
    [](const ::testing::TestParamInfo<Op> &info) {
        return std::string(opName(info.param));
    });

/**
 * Seeded fuzz round-trip through the whole text pipeline: a random
 * *canonical* instruction word (decode succeeds and re-encodes to the
 * same bits) must disassemble to text the assembler accepts and
 * re-encode to the identical word. Catches disasm/asm syntax drift
 * that the field-level RoundTrip sweep above cannot see.
 */
TEST(Encoding, FuzzDisasmAssembleRoundTrip)
{
    constexpr int kCases = 10000;
    constexpr Addr kPc = 0x2000;
    Rng rng(0xf1e8c0de);
    int tested = 0;
    u64 attempts = 0;
    while (tested < kCases) {
        ASSERT_LT(attempts++, u64{20} * 1000 * 1000)
            << "valid-word yield collapsed after " << tested << " cases";
        const u32 word = rng.next32();
        const Instruction inst = decode(word);
        if (!inst.valid || encode(inst) != word)
            continue;
        // A few canonical words carry fields their assembly syntax
        // cannot spell: `rd %y`/`wr %y` name only one register, and
        // the m.* monitor pseudo-ops use specialised operand shapes
        // that do not match the generic disassembly. Skip those; the
        // field-level RoundTrip sweep above covers their encodings.
        if (inst.op == Op::kCpop1 || inst.op == Op::kCpop2)
            continue;
        if (inst.op == Op::kRdy &&
            (inst.rs1 != 0 || inst.has_imm || inst.rs2 != 0))
            continue;
        if (inst.op == Op::kWry &&
            (inst.rd != 0 || inst.has_imm || inst.rs2 != 0))
            continue;
        // Ticc's cond lives in the low four rd bits; the reserved
        // fifth bit (word bit 29) has no spelling either.
        if (inst.op == Op::kTicc && (inst.rd & 0x10) != 0)
            continue;
        // Branch/call displacements are rendered as absolute targets;
        // keep them inside the assembler's 32-bit address space.
        if (inst.op == Op::kBicc || inst.op == Op::kCall) {
            const s64 target =
                s64{kPc} + (s64{inst.disp} << 2);
            if (target < 0 || target > s64{0xfffffffc})
                continue;
        }

        const std::string text = disassemble(word, kPc);
        std::ostringstream source;
        source << ".org 0x" << std::hex << kPc << "\n\t" << text << "\n";

        Assembler assembler;
        Program program;
        ASSERT_TRUE(assembler.assemble(source.str(), &program))
            << "word 0x" << std::hex << word << " disasm '" << text
            << "' does not re-assemble:\n"
            << assembler.errorText();
        ASSERT_EQ(program.wordAt(kPc), word)
            << "'" << text << "' re-assembled to 0x" << std::hex
            << program.wordAt(kPc) << ", expected 0x" << word;
        ++tested;
    }
}

TEST(Opcodes, ClassificationHelpers)
{
    EXPECT_TRUE(isLoad(Op::kLdub));
    EXPECT_FALSE(isLoad(Op::kSt));
    EXPECT_TRUE(isStore(Op::kSth));
    EXPECT_FALSE(isStore(Op::kLd));
    EXPECT_TRUE(isAlu(Op::kXnor));
    EXPECT_FALSE(isAlu(Op::kUmul));
    EXPECT_TRUE(writesIcc(Op::kSubcc));
    EXPECT_FALSE(writesIcc(Op::kSub));
    EXPECT_TRUE(hasDelaySlot(Op::kCall));
    EXPECT_TRUE(hasDelaySlot(Op::kBicc));
    EXPECT_TRUE(hasDelaySlot(Op::kJmpl));
    EXPECT_FALSE(hasDelaySlot(Op::kAdd));
}

TEST(Opcodes, EveryUsedTypeFitsInFiveBits)
{
    EXPECT_LE(static_cast<unsigned>(kNumUsedInstrTypes), 32u);
    for (u8 op = 0; op < static_cast<u8>(Op::kNumOps); ++op) {
        EXPECT_LT(classOf(static_cast<Op>(op)), kNumInstrTypes);
    }
}

}  // namespace
}  // namespace flexcore
