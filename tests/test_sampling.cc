/**
 * @file
 * SMARTS-style sampled timing mode: detailed cycle-accurate windows
 * punctuating fast functional warming (SystemConfig::sample_window /
 * sample_period). Functional behavior — instructions, console output,
 * monitor verdicts — must be exactly the interpreter's; cycle counts
 * become CPI-extrapolated estimates whose relative error against the
 * exact model is measured and bounded here on the Table IV grid
 * (every paper-grid extension x {sha, basicmath}). The documented
 * bound lives in docs/performance.md; this test is what "documented"
 * means.
 */

#include <cmath>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "faults/injector.h"
#include "sim/sim_request.h"
#include "sim/system.h"
#include "workloads/workload.h"

namespace flexcore {
namespace {

/**
 * Documented relative error bound for a 25% detail ratio spread over
 * several short windows (window 500 / period 2000) on the Table IV
 * grid at test scale; the worst measured config (sha x UMC) sits at
 * ~14%. Two structural biases set the scale: the first window always
 * contains the cold-start phase (CPI overestimate), and each window
 * restarts from the drained, empty FIFO, so saturating monitors (SEC)
 * re-pay the back-pressure ramp-up and underestimate CPI. Simulated
 * cycles are deterministic, so the measured errors are stable across
 * hosts and toolchains. Keep in sync with docs/performance.md.
 */
constexpr double kDocumentedErrorBound = 0.15;
constexpr u64 kGridSampleWindow = 500;
constexpr u64 kGridSamplePeriod = 2'000;

Workload
workloadByName(const std::string &name)
{
    return name == "sha" ? makeSha(WorkloadScale::kTest)
                         : makeBasicmath(WorkloadScale::kTest);
}

SystemConfig
gridConfig(MonitorKind monitor)
{
    SystemConfig config;
    config.monitor = monitor;
    config.mode = monitor == MonitorKind::kNone ? ImplMode::kBaseline
                                                : ImplMode::kFlexFabric;
    return config;
}

/** The Table IV grid: paper extensions x benchmark, exact vs sampled. */
class SamplingErrorBound
    : public ::testing::TestWithParam<
          std::tuple<const char *, MonitorKind>>
{
};

TEST_P(SamplingErrorBound, EstimateWithinDocumentedBound)
{
    const auto [name, monitor] = GetParam();
    const Workload workload = workloadByName(name);

    SystemConfig exact_config = gridConfig(monitor);
    const SimOutcome exact =
        SimRequest(exact_config).workload(workload).run();
    ASSERT_EQ(exact.result.exit, RunResult::Exit::kExited);
    ASSERT_EQ(exact.result.console, workload.expected_console);

    SystemConfig sampled_config = gridConfig(monitor);
    sampled_config.sample_window = kGridSampleWindow;
    sampled_config.sample_period = kGridSamplePeriod;
    const SimOutcome sampled =
        SimRequest(sampled_config).workload(workload).run();

    // Functional execution is exact under sampling: same instruction
    // stream, same output, same clean exit (and the same monitor
    // verdict — a trap here would change the exit kind).
    EXPECT_EQ(sampled.result.exit, exact.result.exit);
    EXPECT_EQ(sampled.result.exit_code, exact.result.exit_code);
    EXPECT_EQ(sampled.result.instructions, exact.result.instructions);
    EXPECT_EQ(sampled.result.console, exact.result.console);

    // The run must actually have sampled (otherwise the error check
    // below is vacuous) while simulating only a fraction in detail.
    ASSERT_TRUE(sampled.result.sampled);
    ASSERT_GT(sampled.result.detailed_instructions, 0u);
    ASSERT_LT(sampled.result.detailed_instructions,
              sampled.result.instructions)
        << "workload too short for the chosen sampling unit";

    const double est = static_cast<double>(sampled.result.cycles);
    const double ref = static_cast<double>(exact.result.cycles);
    const double rel_error = std::fabs(est - ref) / ref;
    RecordProperty("relative_error", std::to_string(rel_error));
    EXPECT_LE(rel_error, kDocumentedErrorBound)
        << "estimated " << sampled.result.cycles << " vs exact "
        << exact.result.cycles << " (detailed "
        << sampled.result.detailed_instructions << "/"
        << sampled.result.instructions << " insts, "
        << sampled.result.detailed_cycles << " cycles)";
}

INSTANTIATE_TEST_SUITE_P(
    Table4Grid, SamplingErrorBound,
    ::testing::Combine(::testing::Values("sha", "basicmath"),
                       ::testing::Values(MonitorKind::kUmc,
                                         MonitorKind::kDift,
                                         MonitorKind::kBc,
                                         MonitorKind::kSec)),
    [](const auto &info) {
        std::string label = std::get<0>(info.param);
        label += '_';
        label += monitorKindName(std::get<1>(info.param));
        return label;
    });

/**
 * window == period means every instruction runs in a detailed window:
 * the "estimate" must equal the exact model's cycle count, proving
 * the sampled loop's detailed windows are the real cycle-accurate
 * model and the estimate converges to it as the detail ratio grows.
 */
TEST(Sampling, FullWindowIsExact)
{
    const Workload workload = makeSha(WorkloadScale::kTest);

    SystemConfig exact_config = gridConfig(MonitorKind::kDift);
    const SimOutcome exact =
        SimRequest(exact_config).workload(workload).run();

    SystemConfig sampled_config = gridConfig(MonitorKind::kDift);
    sampled_config.sample_window = 1'000'000;
    sampled_config.sample_period = 1'000'000;
    const SimOutcome sampled =
        SimRequest(sampled_config).workload(workload).run();

    ASSERT_TRUE(sampled.result.sampled);
    EXPECT_EQ(sampled.result.cycles, exact.result.cycles);
    EXPECT_EQ(sampled.result.estimated_cycles, exact.result.cycles);
    EXPECT_EQ(sampled.result.detailed_cycles, exact.result.cycles);
    EXPECT_EQ(sampled.result.instructions, exact.result.instructions);
    EXPECT_EQ(sampled.result.detailed_instructions,
              sampled.result.instructions);
}

// ------------------------------------------------- fault composition

/**
 * Sampling composes with the deterministic fault injector. A
 * cycle-exact trigger inside a detailed window must land on exactly
 * its cycle — the fast-forward cap at the next trigger (proven for
 * the plain loop in test_faults) also holds inside sampled detailed
 * windows, where the same fastForward() runs.
 */
TEST(SamplingFaults, CycleTriggerLandsExactlyInDetailedWindow)
{
    const Workload workload = makeSha(WorkloadScale::kTest);

    SystemConfig config = gridConfig(MonitorKind::kSec);
    config.sample_window = 2'000;
    config.sample_period = 20'000;
    std::string error;
    ASSERT_TRUE(parseFaultSpec("reg@c500:t130:b3",
                               &config.faults.specs.emplace_back(),
                               &error))
        << error;

    System system(config);
    system.load(Assembler::assembleOrDie(workload.source));
    const RunResult result = system.run();
    ASSERT_TRUE(result.sampled);
    ASSERT_NE(system.injector(), nullptr);
    EXPECT_EQ(system.injector()->log().applied, 1u);
    // Cycle 500 is inside detailed window 0 (2000 instructions take
    // at least 2000 cycles), so the trigger fires on its exact cycle.
    EXPECT_EQ(system.injector()->log().first_cycle, 500u);
}

/**
 * A commit-indexed trigger that falls inside a functionally-warmed
 * stretch still fires (warming advances the commit counter through
 * the injector hook), at the same commit index as the exact run.
 */
TEST(SamplingFaults, CommitTriggerFiresDuringWarming)
{
    const Workload workload = makeSha(WorkloadScale::kTest);

    auto runWith = [&](bool sampling) {
        SystemConfig config = gridConfig(MonitorKind::kSec);
        if (sampling) {
            config.sample_window = 500;
            config.sample_period = 5'000;
        }
        // Commit 6000 lands in sampling unit 1's warmed remainder
        // (detailed: [5000, 5500), warmed: [5500, 10000)).
        std::string error;
        EXPECT_TRUE(parseFaultSpec("reg@i6000:t130:b3",
                                   &config.faults.specs.emplace_back(),
                                   &error))
            << error;
        System system(config);
        system.load(Assembler::assembleOrDie(workload.source));
        const RunResult result = system.run();
        EXPECT_GT(result.instructions, 6'000u)
            << "workload too short to reach the trigger";
        return system.injector()->log().applied;
    };

    EXPECT_EQ(runWith(/*sampling=*/false), 1u);
    EXPECT_EQ(runWith(/*sampling=*/true), 1u);
}

// ------------------------------------------------- config rejection

TEST(SamplingConfig, FinalizeRejectsInvalidCombos)
{
    SystemConfig window_only;
    window_only.sample_window = 1'000;
    EXPECT_EQ(window_only.finalize().code,
              ConfigError::Code::kBadSampleWindow);

    SystemConfig period_only;
    period_only.sample_period = 10'000;
    EXPECT_EQ(period_only.finalize().code,
              ConfigError::Code::kBadSampleWindow);

    SystemConfig inverted;
    inverted.sample_window = 20'000;
    inverted.sample_period = 10'000;
    EXPECT_EQ(inverted.finalize().code,
              ConfigError::Code::kBadSampleWindow);

    SystemConfig histograms;
    histograms.sample_window = 1'000;
    histograms.sample_period = 10'000;
    histograms.histograms = true;
    EXPECT_EQ(histograms.finalize().code,
              ConfigError::Code::kSamplingHistograms);

    SystemConfig trace;
    trace.sample_window = 1'000;
    trace.sample_period = 10'000;
    trace.trace_events = true;
    EXPECT_EQ(trace.finalize().code, ConfigError::Code::kSamplingTrace);

    SystemConfig threaded;
    threaded.sample_window = 1'000;
    threaded.sample_period = 10'000;
    threaded.exec_mode = ExecMode::kThreaded;
    EXPECT_EQ(threaded.finalize().code,
              ConfigError::Code::kSamplingExecMode);

    SystemConfig software;
    software.sample_window = 1'000;
    software.sample_period = 10'000;
    software.monitor = MonitorKind::kUmc;
    software.mode = ImplMode::kSoftware;
    EXPECT_EQ(software.finalize().code,
              ConfigError::Code::kSamplingSoftware);

    SystemConfig good;
    good.sample_window = 1'000;
    good.sample_period = 10'000;
    good.monitor = MonitorKind::kDift;
    good.mode = ImplMode::kFlexFabric;
    EXPECT_FALSE(good.finalize());
}

/** Error names are stable (they appear in CLI error messages). */
TEST(SamplingConfig, ErrorNamesAreStable)
{
    EXPECT_EQ(configErrorName(ConfigError::Code::kBadSampleWindow),
              "bad_sample_window");
    EXPECT_EQ(configErrorName(ConfigError::Code::kThreadedHistograms),
              "threaded_histograms");
    EXPECT_EQ(configErrorName(ConfigError::Code::kSamplingHistograms),
              "sampling_histograms");
    EXPECT_EQ(configErrorName(ConfigError::Code::kSamplingTrace),
              "sampling_trace");
    EXPECT_EQ(configErrorName(ConfigError::Code::kSamplingExecMode),
              "sampling_exec_mode");
    EXPECT_EQ(configErrorName(ConfigError::Code::kSamplingSoftware),
              "sampling_software");
}

}  // namespace
}  // namespace flexcore
