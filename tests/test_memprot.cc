/** @file MEMPROT monitor unit + integration tests. */

#include "monitors/memprot.h"

#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "sim/system.h"

namespace flexcore {
namespace {

CommitPacket
mem(Op op, Addr addr)
{
    CommitPacket pkt;
    pkt.di.op = op;
    pkt.di.type = classOf(op);
    pkt.di.valid = true;
    pkt.opcode = static_cast<u8>(pkt.di.type);
    pkt.addr = addr;
    return pkt;
}

CommitPacket
setPerm(Addr addr, u8 perm)
{
    CommitPacket pkt;
    pkt.di.op = Op::kCpop1;
    pkt.di.type = kTypeCpop1;
    pkt.di.cpop_fn = CpopFn::kSetMemTag;
    pkt.di.valid = true;
    pkt.opcode = kTypeCpop1;
    pkt.addr = addr;
    pkt.dest = perm;
    return pkt;
}

MonitorResult
feed(MemProtMonitor *prot, const CommitPacket &pkt)
{
    MonitorResult r;
    prot->process(pkt, &r);
    return r;
}

TEST(MemProt, DefaultIsReadWrite)
{
    MemProtMonitor prot;
    EXPECT_FALSE(feed(&prot, mem(Op::kLd, 0x100)).trap);
    EXPECT_FALSE(feed(&prot, mem(Op::kSt, 0x100)).trap);
}

TEST(MemProt, ReadOnlyBlocksStoresAllowsLoads)
{
    MemProtMonitor prot;
    feed(&prot, setPerm(0x100, MemProtMonitor::kPermReadOnly));
    EXPECT_FALSE(feed(&prot, mem(Op::kLd, 0x100)).trap);
    const MonitorResult r = feed(&prot, mem(Op::kSt, 0x100));
    EXPECT_TRUE(r.trap);
    EXPECT_STREQ(r.trap_reason, "store to read-only word");
}

TEST(MemProt, NoAccessBlocksEverything)
{
    MemProtMonitor prot;
    feed(&prot, setPerm(0x200, MemProtMonitor::kPermNoAccess));
    EXPECT_TRUE(feed(&prot, mem(Op::kLd, 0x200)).trap);
    EXPECT_TRUE(feed(&prot, mem(Op::kStb, 0x201)).trap);  // same word
}

TEST(MemProt, WordGranularity)
{
    MemProtMonitor prot;
    feed(&prot, setPerm(0x100, MemProtMonitor::kPermReadOnly));
    // The adjacent word stays writable.
    EXPECT_FALSE(feed(&prot, mem(Op::kSt, 0x104)).trap);
    // Sub-word accesses inside the protected word are checked.
    EXPECT_TRUE(feed(&prot, mem(Op::kSth, 0x102)).trap);
}

TEST(MemProt, ClearRestoresDefault)
{
    MemProtMonitor prot;
    feed(&prot, setPerm(0x100, MemProtMonitor::kPermNoAccess));
    CommitPacket clr;
    clr.di.op = Op::kCpop1;
    clr.di.type = kTypeCpop1;
    clr.di.cpop_fn = CpopFn::kClearMemTag;
    clr.di.valid = true;
    clr.opcode = kTypeCpop1;
    clr.addr = 0x100;
    feed(&prot, clr);
    EXPECT_FALSE(feed(&prot, mem(Op::kSt, 0x100)).trap);
}

TEST(MemProt, ReadTagReturnsPermission)
{
    MemProtMonitor prot;
    feed(&prot, setPerm(0x300, MemProtMonitor::kPermReadOnly));
    CommitPacket rd;
    rd.di.op = Op::kCpop1;
    rd.di.type = kTypeCpop1;
    rd.di.cpop_fn = CpopFn::kReadTag;
    rd.di.valid = true;
    rd.opcode = kTypeCpop1;
    rd.addr = 0x300;
    const MonitorResult r = feed(&prot, rd);
    EXPECT_TRUE(r.has_bfifo);
    EXPECT_EQ(r.bfifo,
              static_cast<u32>(MemProtMonitor::kPermReadOnly));
}

TEST(MemProt, PolicyDisablesEnforcement)
{
    MemProtMonitor prot;
    prot.setPolicy(0);
    feed(&prot, setPerm(0x100, MemProtMonitor::kPermNoAccess));
    EXPECT_FALSE(feed(&prot, mem(Op::kLd, 0x100)).trap);
}

TEST(MemProt, EndToEndStoreToReadOnlyTraps)
{
    const char *source = R"(
        .org 0x1000
_start: set data, %l0
        m.setmtag [%l0], 1     ; read-only
        ld [%l0], %o0          ; fine
        st %g0, [%l0]          ; trap
        mov 0, %o0
        ta 0
        nop
        .align 4
data:   .word 7
)";
    SystemConfig config;
    config.monitor = MonitorKind::kMemProt;
    config.mode = ImplMode::kFlexFabric;
    System system(config);
    system.load(Assembler::assembleOrDie(source));
    const RunResult result = system.run();
    EXPECT_EQ(result.exit, RunResult::Exit::kMonitorTrap);
    EXPECT_EQ(result.trap_reason, "store to read-only word");
}

}  // namespace
}  // namespace flexcore
