/**
 * @file
 * Per-PC cycle attribution (core/profile.h). The load-bearing claim is
 * *exact accountability at instruction grain*: the profiler's cells sum
 * to the core's ten cycle-bucket counters bucket by bucket — and hence
 * to core.cycles — for every monitor on the paper grid, under both
 * execution engines, with fast-forwarding on or off. The debug build
 * additionally asserts the running total every tick (core.cc); these
 * tests prove the end-to-end equality a release build relies on.
 */

#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "core/profile.h"
#include "sim/sim_request.h"
#include "sim/system.h"
#include "test_json_util.h"
#include "workloads/workload.h"

namespace flexcore {
namespace {

Workload
workloadByName(const std::string &name)
{
    return name == "sha" ? makeSha(WorkloadScale::kTest)
                         : makeBasicmath(WorkloadScale::kTest);
}

SystemConfig
gridConfig(MonitorKind monitor, ExecMode exec)
{
    SystemConfig config;
    config.monitor = monitor;
    config.mode = monitor == MonitorKind::kNone ? ImplMode::kBaseline
                                                : ImplMode::kFlexFabric;
    config.exec_mode = exec;
    return config;
}

/** {monitor} x {workload} x {exec engine}: attribution is exact. */
class ProfileAccounting
    : public ::testing::TestWithParam<
          std::tuple<MonitorKind, const char *, ExecMode>>
{
};

TEST_P(ProfileAccounting, CellsSumToBucketCountersExactly)
{
    const auto [monitor, name, exec] = GetParam();
    const Workload workload = workloadByName(name);

    System system(gridConfig(monitor, exec));
    PcProfile profile;
    system.attachProfile(&profile);
    system.load(Assembler::assembleOrDie(workload.source));
    const RunResult result = system.run();
    ASSERT_EQ(result.exit, RunResult::Exit::kExited);
    ASSERT_EQ(result.console, workload.expected_console);

    const Core &core = system.core();
    EXPECT_EQ(profile.total(), core.cycles());
    EXPECT_EQ(profile.total(), result.cycles);
    for (unsigned b = 0; b < PcProfile::kNumBuckets; ++b) {
        const auto bucket = static_cast<Core::CycleBucket>(b);
        EXPECT_EQ(profile.bucketTotal(bucket), core.cyclesIn(bucket))
            << "bucket " << Core::cycleBucketName(bucket);
    }
    // Attribution PCs stay inside the program text: nothing lands in
    // the overflow row on a clean run.
    EXPECT_EQ(profile.overflowTotal(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, ProfileAccounting,
    ::testing::Combine(::testing::Values(MonitorKind::kNone,
                                         MonitorKind::kUmc,
                                         MonitorKind::kDift,
                                         MonitorKind::kBc,
                                         MonitorKind::kSec),
                       ::testing::Values("sha", "basicmath"),
                       ::testing::Values(ExecMode::kInterp,
                                         ExecMode::kThreaded)),
    [](const auto &info) {
        const MonitorKind monitor = std::get<0>(info.param);
        std::string label = monitor == MonitorKind::kNone
                                ? "baseline"
                                : std::string(monitorKindName(monitor));
        label += '_';
        label += std::get<1>(info.param);
        label += '_';
        label += execModeName(std::get<2>(info.param));
        return label;
    });

/**
 * Fast-forwarding charges bulk idle stretches through the same
 * attribution hook one cycle at a time would use, so the entire
 * profile — not just the totals — is identical with it on or off.
 */
TEST(Profile, FastForwardDoesNotChangeAttribution)
{
    const Workload workload = makeSha(WorkloadScale::kTest);
    auto profileJson = [&](bool fast_forward) {
        SystemConfig config =
            gridConfig(MonitorKind::kDift, ExecMode::kInterp);
        config.fast_forward = fast_forward;
        const SimOutcome out = SimRequest(config)
                                   .workload(workload)
                                   .profileJson(10)
                                   .run();
        return out.profile_json;
    };
    const std::string on = profileJson(true);
    const std::string off = profileJson(false);
    EXPECT_FALSE(on.empty());
    EXPECT_EQ(on, off);
}

/** The hotspot report is strict JSON with the documented shape. */
TEST(Profile, JsonReportIsValidAndCoversEveryBucket)
{
    const Workload workload = makeSha(WorkloadScale::kTest);
    const SimOutcome out =
        SimRequest(gridConfig(MonitorKind::kUmc, ExecMode::kInterp))
            .workload(workload)
            .profileJson(5)
            .run();

    std::string error;
    ASSERT_TRUE(testjson::isValidJson(out.profile_json, &error))
        << error << "\n"
        << out.profile_json;
    // Every one of the ten buckets appears in both the totals object
    // and the top-N lists, even when empty.
    for (unsigned b = 0; b < PcProfile::kNumBuckets; ++b) {
        const std::string key =
            "\"" +
            std::string(Core::cycleBucketName(
                static_cast<Core::CycleBucket>(b))) +
            "\":";
        EXPECT_NE(out.profile_json.find(key), std::string::npos)
            << key;
    }
    EXPECT_NE(out.profile_json.find("\"pcs\": ["), std::string::npos);
    EXPECT_NE(out.profile_json.find("\"top\": {"), std::string::npos);
}

/**
 * SimRequest wires an external profiler identically to the internal
 * one, and the JSON "cycles" field carries the grand total.
 */
TEST(Profile, ExternalProfilerMatchesReportedCycles)
{
    const Workload workload = makeBasicmath(WorkloadScale::kTest);
    PcProfile profile;
    const SimOutcome out =
        SimRequest(gridConfig(MonitorKind::kBc, ExecMode::kInterp))
            .workload(workload)
            .profile(&profile)
            .profileJson(3)
            .run();
    EXPECT_EQ(profile.total(), out.result.cycles);
    const std::string cycles_field =
        "\"cycles\": " + std::to_string(out.result.cycles);
    EXPECT_NE(out.profile_json.find(cycles_field), std::string::npos)
        << out.profile_json;
}

}  // namespace
}  // namespace flexcore
