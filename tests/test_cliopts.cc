/**
 * @file
 * Unit tests for the shared command-line parser behind the flexcore
 * tools: typed value validation, unknown-flag suggestions, repeatable
 * options, choices, positionals, and --help synthesis.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/cliopts.h"

namespace flexcore {
namespace {

/** argv builder: keeps the strings alive for the parser call. */
class Argv
{
  public:
    explicit Argv(std::vector<std::string> args)
        : args_(std::move(args))
    {
        ptrs_.push_back(const_cast<char *>("prog"));
        for (std::string &arg : args_)
            ptrs_.push_back(arg.data());
    }

    int argc() const { return static_cast<int>(ptrs_.size()); }
    char **argv() { return ptrs_.data(); }

  private:
    std::vector<std::string> args_;
    std::vector<char *> ptrs_;
};

TEST(CliOpts, ParsesTypedOptionsAndFlags)
{
    bool verbose = false;
    u32 jobs = 0;
    u64 cycles = 0;
    double rate = 0.0;
    std::string out;

    cli::Parser parser("tool", "test");
    parser.flag("--verbose", &verbose, "talk more");
    parser.option("--jobs", &jobs, "N", "worker threads");
    parser.option("--max-cycles", &cycles, "N", "cycle budget");
    parser.option("--rate", &rate, "P", "probability");
    parser.option("--out", &out, "FILE", "output path");

    Argv args({"--verbose", "--jobs", "8", "--max-cycles",
               "5000000000", "--rate", "1e-5", "--out", "x.json"});
    std::string error;
    ASSERT_TRUE(parser.tryParse(args.argc(), args.argv(), &error))
        << error;
    EXPECT_TRUE(verbose);
    EXPECT_EQ(jobs, 8u);
    EXPECT_EQ(cycles, 5000000000ull);
    EXPECT_DOUBLE_EQ(rate, 1e-5);
    EXPECT_EQ(out, "x.json");
}

TEST(CliOpts, RejectsMalformedNumbers)
{
    u32 jobs = 0;
    cli::Parser parser("tool", "test");
    parser.option("--jobs", &jobs, "N", "worker threads");

    for (const char *bad : {"nope", "8x", "", "-3"}) {
        Argv args({"--jobs", bad});
        std::string error;
        EXPECT_FALSE(parser.tryParse(args.argc(), args.argv(), &error))
            << "accepted '" << bad << "'";
        EXPECT_FALSE(error.empty());
    }
}

TEST(CliOpts, UnknownFlagSuggestsNearestName)
{
    bool quiet = false;
    cli::Parser parser("tool", "test");
    parser.flag("--quiet", &quiet, "hush");

    Argv args({"--qiet"});
    std::string error;
    ASSERT_FALSE(parser.tryParse(args.argc(), args.argv(), &error));
    EXPECT_NE(error.find("--quiet"), std::string::npos) << error;
}

TEST(CliOpts, ListAppendsEveryOccurrence)
{
    std::vector<std::string> stats;
    cli::Parser parser("tool", "test");
    parser.list("--stat", &stats, "PATH", "counter path");

    Argv args({"--stat", "core.cycles", "--stat", "bus.busy_cycles"});
    std::string error;
    ASSERT_TRUE(parser.tryParse(args.argc(), args.argv(), &error))
        << error;
    ASSERT_EQ(stats.size(), 2u);
    EXPECT_EQ(stats[0], "core.cycles");
    EXPECT_EQ(stats[1], "bus.busy_cycles");
}

TEST(CliOpts, ChoiceAppliesIndexAndRejectsOthers)
{
    size_t picked = ~size_t{0};
    cli::Parser parser("tool", "test");
    parser.choice("--mode", {"baseline", "asic", "flexcore"},
                  [&](size_t i) { picked = i; }, "impl mode");

    {
        Argv args({"--mode", "asic"});
        std::string error;
        ASSERT_TRUE(parser.tryParse(args.argc(), args.argv(), &error))
            << error;
        EXPECT_EQ(picked, 1u);
    }
    {
        Argv args({"--mode", "fpga"});
        std::string error;
        EXPECT_FALSE(
            parser.tryParse(args.argc(), args.argv(), &error));
        EXPECT_NE(error.find("baseline"), std::string::npos) << error;
    }
}

TEST(CliOpts, PositionalRequiredAndCaptured)
{
    std::string path;
    cli::Parser parser("tool", "test");
    parser.positional("program.s", &path);

    {
        Argv args({"prog.s"});
        std::string error;
        ASSERT_TRUE(parser.tryParse(args.argc(), args.argv(), &error))
            << error;
        EXPECT_EQ(path, "prog.s");
    }
    {
        Argv args({});
        std::string error;
        EXPECT_FALSE(
            parser.tryParse(args.argc(), args.argv(), &error));
    }
    {
        Argv args({"a.s", "b.s"});
        std::string error;
        EXPECT_FALSE(
            parser.tryParse(args.argc(), args.argv(), &error));
    }
}

TEST(CliOpts, MissingValueIsAnError)
{
    std::string out;
    cli::Parser parser("tool", "test");
    parser.option("--out", &out, "FILE", "output path");

    Argv args({"--out"});
    std::string error;
    EXPECT_FALSE(parser.tryParse(args.argc(), args.argv(), &error));
    EXPECT_FALSE(error.empty());
}

TEST(CliOpts, HelpMentionsEveryDeclaredOption)
{
    bool flag = false;
    u32 n = 0;
    cli::Parser parser("mytool", "does things");
    parser.flag("--fast", &flag, "go faster");
    parser.option("--level", &n, "N", "effort level");
    parser.footer("see docs/perf.md");

    Argv args({"--help"});
    std::string error;
    ASSERT_TRUE(parser.tryParse(args.argc(), args.argv(), &error));
    EXPECT_TRUE(parser.helpRequested());
    const std::string help = parser.helpText();
    for (const char *needle :
         {"mytool", "does things", "--fast", "go faster", "--level",
          "N", "effort level", "see docs/perf.md"}) {
        EXPECT_NE(help.find(needle), std::string::npos)
            << "help is missing '" << needle << "':\n"
            << help;
    }
}

}  // namespace
}  // namespace flexcore
