/** @file Unit tests for the Chrome trace-event emitter. */

#include "common/trace_event.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "test_json_util.h"

namespace flexcore {
namespace {

TEST(TraceEvent, EmptySinkRendersValidJson)
{
    TraceBuffer sink;
    EXPECT_TRUE(sink.empty());
    const std::string json = sink.json();
    std::string error;
    EXPECT_TRUE(testjson::isValidJson(json, &error)) << error << "\n"
                                                     << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(TraceEvent, AllEventKindsRenderValidJson)
{
    TraceBuffer sink;
    sink.counter("ffifo_occupancy", 10, 3);
    sink.complete("dmiss_wait", "core", 1, 20, 50);
    sink.instant("monitor_trap", "core", 1, 60);
    EXPECT_EQ(sink.size(), 3u);

    const std::string json = sink.json();
    std::string error;
    ASSERT_TRUE(testjson::isValidJson(json, &error)) << error << "\n"
                                                     << json;
    // Counter: ph C with the value in args.
    EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
    EXPECT_NE(json.find("\"args\": {\"value\": 3}"), std::string::npos);
    // Complete: ph X with ts and dur in simulated-cycle microseconds.
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\": 20, \"dur\": 30"), std::string::npos);
    // Instant: ph i with global scope.
    EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(json.find("\"s\": \"g\""), std::string::npos);
}

TEST(TraceEvent, CompleteClampsReversedInterval)
{
    TraceBuffer sink;
    sink.complete("x", "c", 0, 10, 10);
    sink.complete("y", "c", 0, 10, 5);
    const std::string json = sink.json();
    // Both degenerate intervals render with dur 0, never underflow.
    EXPECT_EQ(json.find("\"dur\": 18446744073709551"),
              std::string::npos);
    std::string error;
    EXPECT_TRUE(testjson::isValidJson(json, &error)) << error;
}

TEST(TraceEvent, ClearEmptiesTheBuffer)
{
    TraceBuffer sink;
    sink.instant("a", "c", 0, 1);
    sink.clear();
    EXPECT_TRUE(sink.empty());
    EXPECT_EQ(sink.size(), 0u);
}

TEST(TraceEvent, WriteRoundTripsThroughDisk)
{
    TraceBuffer sink;
    sink.counter("depth", 0, 1);
    sink.counter("depth", 5, 0);

    const std::string path =
        ::testing::TempDir() + "/flexcore_trace_test.json";
    sink.write(path);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(buffer.str(), sink.json());
    std::remove(path.c_str());
}

}  // namespace
}  // namespace flexcore
