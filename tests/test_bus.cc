/** @file Shared-bus tests: FCFS order, occupancy, contention. */

#include "memory/bus.h"

#include <gtest/gtest.h>

namespace flexcore {
namespace {

class BusTest : public ::testing::Test
{
  protected:
    StatGroup stats_{"test"};
    SdramTimings timings_;   // defaults: read 30, write-line 26, word 3
};

TEST_F(BusTest, IdleUntilRequested)
{
    Bus bus(&stats_, timings_);
    EXPECT_TRUE(bus.idle());
    bus.tick();
    EXPECT_TRUE(bus.idle());
}

TEST_F(BusTest, ReadLineTakesConfiguredCycles)
{
    Bus bus(&stats_, timings_);
    bool done = false;
    bus.request({BusOp::kReadLine, 0x100, [&] { done = true; }});
    for (u32 i = 0; i < timings_.line_read - 1; ++i) {
        bus.tick();
        EXPECT_FALSE(done) << i;
    }
    bus.tick();
    EXPECT_TRUE(done);
    EXPECT_TRUE(bus.idle());
}

TEST_F(BusTest, WordWriteIsCheap)
{
    Bus bus(&stats_, timings_);
    bool done = false;
    bus.request({BusOp::kWriteWord, 0x100, [&] { done = true; }});
    for (u32 i = 0; i < timings_.word_write; ++i)
        bus.tick();
    EXPECT_TRUE(done);
}

TEST_F(BusTest, FcfsOrderPreserved)
{
    Bus bus(&stats_, timings_);
    std::vector<int> order;
    bus.request({BusOp::kWriteWord, 1, [&] { order.push_back(1); }});
    bus.request({BusOp::kReadLine, 2, [&] { order.push_back(2); }});
    bus.request({BusOp::kWriteWord, 3, [&] { order.push_back(3); }});
    for (int i = 0; i < 200; ++i)
        bus.tick();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    EXPECT_EQ(order[2], 3);
}

TEST_F(BusTest, ContentionDelaysSecondRequester)
{
    // This is the §V-C effect: a meta-data refill occupying the bus
    // delays a core refill by the full line-read latency.
    Bus bus(&stats_, timings_);
    u64 cycle = 0;
    u64 meta_done = 0, core_done = 0;
    bus.request({BusOp::kReadLine, 0x100, [&] { meta_done = cycle; }});
    bus.request({BusOp::kReadLine, 0x200, [&] { core_done = cycle; }});
    for (cycle = 1; cycle <= 200 && core_done == 0; ++cycle)
        bus.tick();
    EXPECT_EQ(meta_done, timings_.line_read);
    EXPECT_EQ(core_done, 2u * timings_.line_read);
}

TEST_F(BusTest, CallbackMayEnqueueNewRequest)
{
    Bus bus(&stats_, timings_);
    bool second_done = false;
    bus.request({BusOp::kWriteWord, 1, [&] {
        bus.request({BusOp::kWriteWord, 2, [&] { second_done = true; }});
    }});
    for (int i = 0; i < 20; ++i)
        bus.tick();
    EXPECT_TRUE(second_done);
}

TEST_F(BusTest, StatsCountTransactions)
{
    Bus bus(&stats_, timings_);
    bus.request({BusOp::kReadLine, 0, nullptr});
    bus.request({BusOp::kWriteLine, 0, nullptr});
    bus.request({BusOp::kWriteWord, 0, nullptr});
    for (int i = 0; i < 200; ++i)
        bus.tick();
    EXPECT_EQ(stats_.lookup("bus.line_reads"), 1u);
    EXPECT_EQ(stats_.lookup("bus.line_writes"), 1u);
    EXPECT_EQ(stats_.lookup("bus.word_writes"), 1u);
    EXPECT_EQ(stats_.lookup("bus.busy_cycles"),
              timings_.line_read + timings_.line_write +
                  timings_.word_write);
}

TEST_F(BusTest, QueueDepthVisible)
{
    Bus bus(&stats_, timings_);
    bus.request({BusOp::kReadLine, 0, nullptr});
    bus.request({BusOp::kReadLine, 0, nullptr});
    bus.request({BusOp::kReadLine, 0, nullptr});
    EXPECT_EQ(bus.queueDepth(), 2u);   // one active + two queued
    EXPECT_FALSE(bus.idle());
}

}  // namespace
}  // namespace flexcore
