/**
 * @file
 * Minimal recursive-descent JSON syntax checker for tests. It accepts
 * exactly the JSON grammar (RFC 8259) and nothing else, so a test can
 * assert that an emitter's output would load in any real parser without
 * the repo growing a JSON library dependency.
 */

#ifndef FLEXCORE_TESTS_TEST_JSON_UTIL_H_
#define FLEXCORE_TESTS_TEST_JSON_UTIL_H_

#include <cctype>
#include <string>
#include <string_view>

namespace flexcore::testjson {

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    /** Parse one complete JSON document; false on any syntax error. */
    bool parse()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == text_.size();
    }

    std::string error() const
    {
        return error_.empty()
                   ? ""
                   : error_ + " at byte " + std::to_string(pos_);
    }

  private:
    bool fail(const char *what)
    {
        if (error_.empty())
            error_ = what;
        return false;
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail("bad literal");
        pos_ += word.size();
        return true;
    }

    bool value()
    {
        if (pos_ >= text_.size())
            return fail("unexpected end");
        switch (text_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool object()
    {
        ++pos_;   // '{'
        skipWs();
        if (consume('}'))
            return true;
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            if (!string())
                return false;
            skipWs();
            if (!consume(':'))
                return fail("expected ':'");
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (consume('}'))
                return true;
            if (!consume(','))
                return fail("expected ',' or '}'");
        }
    }

    bool array()
    {
        ++pos_;   // '['
        skipWs();
        if (consume(']'))
            return true;
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (consume(']'))
                return true;
            if (!consume(','))
                return fail("expected ',' or ']'");
        }
    }

    bool string()
    {
        ++pos_;   // opening quote
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control char in string");
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return fail("truncated escape");
                const char e = text_[pos_];
                if (e == 'u') {
                    for (int i = 1; i <= 4; ++i) {
                        if (pos_ + i >= text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text_[pos_ + i])))
                            return fail("bad \\u escape");
                    }
                    pos_ += 4;
                } else if (e != '"' && e != '\\' && e != '/' &&
                           e != 'b' && e != 'f' && e != 'n' && e != 'r' &&
                           e != 't') {
                    return fail("bad escape");
                }
            }
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool digits()
    {
        if (pos_ >= text_.size() ||
            !std::isdigit(static_cast<unsigned char>(text_[pos_])))
            return fail("expected digit");
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        return true;
    }

    bool number()
    {
        consume('-');
        if (consume('0')) {
            // no leading zeros
        } else if (!digits()) {
            return false;
        }
        if (consume('.') && !digits())
            return false;
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (!digits())
                return false;
        }
        return true;
    }

    std::string_view text_;
    size_t pos_ = 0;
    std::string error_;
};

/** True when @p text is one syntactically valid JSON document. */
inline bool
isValidJson(std::string_view text, std::string *error = nullptr)
{
    Parser parser(text);
    const bool ok = parser.parse();
    if (!ok && error)
        *error = parser.error();
    return ok;
}

}  // namespace flexcore::testjson

#endif  // FLEXCORE_TESTS_TEST_JSON_UTIL_H_
