/** @file Synthesis-model tests: mappings, calibration bands, Table III. */

#include "synth/report.h"

#include <gtest/gtest.h>

#include "synth/asic_model.h"
#include "synth/fpga_model.h"

namespace flexcore {
namespace {

TEST(Resources, FpgaMappingBasics)
{
    Inventory inv;
    inv.add(Primitive::Kind::kAdder, 32);
    inv.add(Primitive::Kind::kRegister, 64, 2);
    const FpgaResources fpga = mapToFpga(inv);
    EXPECT_EQ(fpga.luts, 32u);     // registers use FFs, not LUTs
    EXPECT_EQ(fpga.ffs, 128u);
}

TEST(Resources, AsicMappingBasics)
{
    Inventory inv;
    inv.add(Primitive::Kind::kAdder, 32);
    inv.sram_bits = 1024;
    inv.sram_macros = 1;
    const AsicResources asic = mapToAsic(inv);
    EXPECT_EQ(asic.gates, 32u * 6);
    EXPECT_EQ(asic.sram_bits, 1024u);
}

TEST(FpgaModel, KuonRoseAreaPerLut)
{
    // 10-LUT CLB tile = 8,069 um^2 (Kuon-Rose, 65nm).
    EXPECT_NEAR(FpgaModel::areaUm2(10), 8069.0, 10.0);
}

TEST(FpgaModel, FrequencyDecreasesWithDepth)
{
    EXPECT_GT(FpgaModel::fmaxMhz(4.0), FpgaModel::fmaxMhz(5.0));
    EXPECT_GT(FpgaModel::fmaxMhz(5.0), FpgaModel::fmaxMhz(6.0));
    // Calibration anchors (paper Table III).
    EXPECT_NEAR(FpgaModel::fmaxMhz(4.0), 266.0, 5.0);
    EXPECT_NEAR(FpgaModel::fmaxMhz(5.6), 213.0, 5.0);
}

TEST(FpgaModel, PowerScalesWithLutsAndFrequency)
{
    const double small = FpgaModel::powerMw(100, 200);
    const double more_luts = FpgaModel::powerMw(400, 200);
    const double faster = FpgaModel::powerMw(100, 400);
    EXPECT_GT(more_luts, small);
    EXPECT_GT(faster, small);
}

TEST(AsicModel, FrequencyPenaltyPerTap)
{
    EXPECT_NEAR(AsicModel::fmaxMhz(0), 465.0, 0.5);
    EXPECT_LT(AsicModel::fmaxMhz(9), AsicModel::fmaxMhz(2));
    EXPECT_NEAR(AsicModel::fmaxMhz(9), 456.0, 2.0);
}

TEST(ExtensionSynth, FifoBitsMatchTableII)
{
    EXPECT_EQ(forwardFifoBits(64), 64u * 293);
}

TEST(ExtensionSynth, FabricLutBands)
{
    // Paper LUT counts (from area / 807 um^2): UMC 112, DIFT 153,
    // BC 252, SEC 484. Allow 10%.
    const struct
    {
        MonitorKind kind;
        u32 paper_luts;
    } cases[] = {
        {MonitorKind::kUmc, 112},
        {MonitorKind::kDift, 153},
        {MonitorKind::kBc, 252},
        {MonitorKind::kSec, 484},
    };
    for (const auto &c : cases) {
        const FpgaResources res = mapToFpga(extensionSynth(c.kind).fabric);
        EXPECT_NEAR(res.luts, c.paper_luts, 0.1 * c.paper_luts)
            << monitorKindName(c.kind);
    }
}

TEST(ExtensionSynth, FabricSizeOrdering)
{
    // UMC < DIFT < BC < SEC, as in the paper.
    const u32 umc = mapToFpga(extensionSynth(MonitorKind::kUmc).fabric).luts;
    const u32 dift =
        mapToFpga(extensionSynth(MonitorKind::kDift).fabric).luts;
    const u32 bc = mapToFpga(extensionSynth(MonitorKind::kBc).fabric).luts;
    const u32 sec =
        mapToFpga(extensionSynth(MonitorKind::kSec).fabric).luts;
    EXPECT_LT(umc, dift);
    EXPECT_LT(dift, bc);
    EXPECT_LT(bc, sec);
}

TEST(SynthTable, MatchesPaperBands)
{
    const std::vector<SynthRow> rows = synthesisTable();
    ASSERT_EQ(rows.size(), 10u);

    auto find = [&](const std::string &group,
                    const std::string &ext) -> const SynthRow & {
        for (const SynthRow &row : rows) {
            if (row.group == group && row.extension == ext)
                return row;
        }
        ADD_FAILURE() << group << "/" << ext << " missing";
        return rows[0];
    };

    // Baseline anchors.
    const SynthRow &base = find("Baseline", "-");
    EXPECT_NEAR(base.area_um2, 835525, 1);
    EXPECT_NEAR(base.power_mw, 365, 1);
    EXPECT_NEAR(base.fmax_mhz, 465, 1);

    // ASIC extension area overheads (paper: 11.6/15/19.3/0.15 %).
    EXPECT_NEAR(find("ASIC", "UMC").area_overhead, 0.116, 0.02);
    EXPECT_NEAR(find("ASIC", "DIFT").area_overhead, 0.15, 0.02);
    EXPECT_NEAR(find("ASIC", "BC").area_overhead, 0.193, 0.02);
    EXPECT_NEAR(find("ASIC", "SEC").area_overhead, 0.0015, 0.002);

    // Dedicated FlexCore modules (paper: +32.5% area, +14.6% power).
    const SynthRow &common = find("FlexCore", "Common");
    EXPECT_NEAR(common.area_overhead, 0.325, 0.03);
    EXPECT_NEAR(common.power_overhead, 0.146, 0.02);
    EXPECT_NEAR(common.fmax_mhz, 458, 2);

    // Fabric frequencies set the Table IV clock ratios.
    EXPECT_NEAR(find("FlexCore", "UMC").fmax_mhz, 266, 8);
    EXPECT_NEAR(find("FlexCore", "DIFT").fmax_mhz, 256, 8);
    EXPECT_NEAR(find("FlexCore", "BC").fmax_mhz, 229, 8);
    EXPECT_NEAR(find("FlexCore", "SEC").fmax_mhz, 213, 8);

    // Fabric power (paper: 21/23/27/36 mW).
    EXPECT_NEAR(find("FlexCore", "UMC").power_mw, 21, 3);
    EXPECT_NEAR(find("FlexCore", "SEC").power_mw, 36, 4);
}

TEST(SynthTable, HalfAndQuarterClockJustified)
{
    // The paper runs UMC/DIFT/BC at 0.5X and SEC at 0.25X; the fabric
    // frequency estimates must support those ratios against the
    // common-modules core frequency (458 MHz).
    const std::vector<SynthRow> rows = synthesisTable();
    for (const SynthRow &row : rows) {
        if (row.group != "FlexCore" || row.extension == "Common")
            continue;
        const double ratio = row.fmax_mhz / 458.0;
        if (row.extension == "SEC")
            EXPECT_GE(ratio, 0.25);
        else
            EXPECT_GE(ratio, 0.5);
    }
}

TEST(SynthTable, RenderContainsEveryRow)
{
    const std::vector<SynthRow> rows = synthesisTable();
    const std::string text = renderSynthesisTable(rows);
    EXPECT_NE(text.find("Baseline"), std::string::npos);
    EXPECT_NE(text.find("UMC on Flex fabric"), std::string::npos);
    EXPECT_NE(text.find("dedicated FlexCore modules"),
              std::string::npos);
}

}  // namespace
}  // namespace flexcore
