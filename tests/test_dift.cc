/** @file DIFT monitor unit tests: taint propagation and checks. */

#include "monitors/dift.h"

#include <gtest/gtest.h>

#include "extensions/registry.h"

namespace flexcore {
namespace {

CommitPacket
aluPkt(u16 src1, u16 src2, u16 dest)
{
    CommitPacket pkt;
    pkt.di.op = Op::kAdd;
    pkt.di.type = kTypeAluAdd;
    pkt.di.valid = true;
    pkt.opcode = kTypeAluAdd;
    pkt.src1 = src1;
    pkt.src2 = src2;
    pkt.dest = dest;
    return pkt;
}

CommitPacket
loadPkt(Addr addr, u16 dest)
{
    CommitPacket pkt;
    pkt.di.op = Op::kLd;
    pkt.di.type = kTypeLoadWord;
    pkt.di.valid = true;
    pkt.opcode = kTypeLoadWord;
    pkt.addr = addr;
    pkt.dest = dest;
    return pkt;
}

CommitPacket
storePkt(Addr addr, u16 data_reg)
{
    CommitPacket pkt;
    pkt.di.op = Op::kSt;
    pkt.di.type = kTypeStoreWord;
    pkt.di.valid = true;
    pkt.opcode = kTypeStoreWord;
    pkt.addr = addr;
    pkt.dest = data_reg;   // DEST carries the store-data register
    return pkt;
}

CommitPacket
jumpPkt(u16 target_reg, u16 link_reg = 0)
{
    CommitPacket pkt;
    pkt.di.op = Op::kJmpl;
    pkt.di.type = kTypeIndirectJump;
    pkt.di.valid = true;
    pkt.opcode = kTypeIndirectJump;
    pkt.src1 = target_reg;
    pkt.dest = link_reg;
    return pkt;
}

CommitPacket
cpopPkt(CpopFn fn, u16 src1 = 0, Addr addr = 0)
{
    CommitPacket pkt;
    pkt.di.op = Op::kCpop1;
    pkt.di.type = kTypeCpop1;
    pkt.di.cpop_fn = fn;
    pkt.di.valid = true;
    pkt.opcode = kTypeCpop1;
    pkt.src1 = src1;
    pkt.addr = addr;
    return pkt;
}

MonitorResult
feed(DiftMonitor *dift, const CommitPacket &pkt)
{
    MonitorResult result;
    dift->process(pkt, &result);
    return result;
}

TEST(Dift, SetTagThenAluPropagates)
{
    DiftMonitor dift;
    feed(&dift, cpopPkt(CpopFn::kSetRegTag, 9));
    EXPECT_TRUE(dift.regTainted(9));
    feed(&dift, aluPkt(9, 10, 11));   // tainted | clean -> tainted
    EXPECT_TRUE(dift.regTainted(11));
    feed(&dift, aluPkt(10, 12, 13));  // clean | clean -> clean
    EXPECT_FALSE(dift.regTainted(13));
}

TEST(Dift, TaintOrSemantics)
{
    DiftMonitor dift;
    feed(&dift, cpopPkt(CpopFn::kSetRegTag, 9));
    feed(&dift, cpopPkt(CpopFn::kSetRegTag, 10));
    feed(&dift, aluPkt(9, 10, 11));
    EXPECT_TRUE(dift.regTainted(11));
    // Overwriting with clean sources clears the taint.
    feed(&dift, aluPkt(12, 13, 11));
    EXPECT_FALSE(dift.regTainted(11));
}

TEST(Dift, LoadStoreMoveTaintThroughMemory)
{
    DiftMonitor dift;
    feed(&dift, cpopPkt(CpopFn::kSetRegTag, 9));
    const MonitorResult st = feed(&dift, storePkt(0x2000, 9));
    EXPECT_TRUE(dift.memTainted(0x2000));
    ASSERT_EQ(st.num_ops, 1u);
    EXPECT_TRUE(st.ops[0].is_write);

    const MonitorResult ld = feed(&dift, loadPkt(0x2000, 14));
    EXPECT_TRUE(dift.regTainted(14));
    ASSERT_EQ(ld.num_ops, 1u);
    EXPECT_FALSE(ld.ops[0].is_write);

    // Loading an untainted word clears the destination.
    feed(&dift, loadPkt(0x3000, 14));
    EXPECT_FALSE(dift.regTainted(14));
}

TEST(Dift, TaintedIndirectJumpTraps)
{
    DiftMonitor dift;
    feed(&dift, cpopPkt(CpopFn::kSetRegTag, 9));
    const MonitorResult r = feed(&dift, jumpPkt(9));
    EXPECT_TRUE(r.trap);
    EXPECT_STREQ(r.trap_reason, "tainted indirect jump target");
}

TEST(Dift, CleanIndirectJumpPasses)
{
    DiftMonitor dift;
    const MonitorResult r = feed(&dift, jumpPkt(9));
    EXPECT_FALSE(r.trap);
}

TEST(Dift, JumpAndCallClearLinkRegister)
{
    DiftMonitor dift;
    feed(&dift, cpopPkt(CpopFn::kSetRegTag, 15));
    feed(&dift, jumpPkt(10, /*link=*/15));
    EXPECT_FALSE(dift.regTainted(15));   // link reg gets a clean PC

    CommitPacket call;
    call.di.op = Op::kCall;
    call.di.type = kTypeCall;
    call.di.valid = true;
    call.opcode = kTypeCall;
    call.dest = 15;
    feed(&dift, cpopPkt(CpopFn::kSetRegTag, 15));
    feed(&dift, call);
    EXPECT_FALSE(dift.regTainted(15));
}

TEST(Dift, SethiClearsDestination)
{
    DiftMonitor dift;
    feed(&dift, cpopPkt(CpopFn::kSetRegTag, 9));
    CommitPacket sethi;
    sethi.di.op = Op::kSethi;
    sethi.di.type = kTypeSethi;
    sethi.di.valid = true;
    sethi.opcode = kTypeSethi;
    sethi.dest = 9;
    feed(&dift, sethi);
    EXPECT_FALSE(dift.regTainted(9));
}

TEST(Dift, PolicyGatesJumpCheck)
{
    DiftMonitor dift;
    feed(&dift, cpopPkt(CpopFn::kSetRegTag, 9));
    CommitPacket policy = cpopPkt(CpopFn::kSetPolicy, 0, /*addr=*/0);
    feed(&dift, policy);
    const MonitorResult r = feed(&dift, jumpPkt(9));
    EXPECT_FALSE(r.trap);   // checking disabled
}

TEST(Dift, MemTagOpsAndDeclassification)
{
    DiftMonitor dift;
    feed(&dift, cpopPkt(CpopFn::kSetMemTag, 0, 0x2000));
    EXPECT_TRUE(dift.memTainted(0x2000));
    feed(&dift, cpopPkt(CpopFn::kClearMemTag, 0, 0x2000));
    EXPECT_FALSE(dift.memTainted(0x2000));
}

TEST(Dift, ReadTagReportsRegisterTaint)
{
    DiftMonitor dift;
    feed(&dift, cpopPkt(CpopFn::kSetRegTag, 9));
    const MonitorResult r = feed(&dift, cpopPkt(CpopFn::kReadTag, 9));
    EXPECT_TRUE(r.has_bfifo);
    EXPECT_EQ(r.bfifo, 1u);
}

TEST(Dift, G0NeverTainted)
{
    DiftMonitor dift;
    feed(&dift, cpopPkt(CpopFn::kSetRegTag, 0));
    EXPECT_FALSE(dift.regTainted(0));
    feed(&dift, aluPkt(0, 0, 9));
    EXPECT_FALSE(dift.regTainted(9));
}

TEST(Dift, ImmediateOperandsCarryNoTaint)
{
    DiftMonitor dift;
    feed(&dift, cpopPkt(CpopFn::kSetRegTag, 9));
    // add %r10, imm -> dest: src2 = 0 (%g0 placeholder), stays clean.
    feed(&dift, aluPkt(10, 0, 11));
    EXPECT_FALSE(dift.regTainted(11));
}

TEST(Dift, CfgrForwardsAluMemAndJumps)
{
    Cfgr cfgr;
    ASSERT_TRUE(programCfgr(MonitorKind::kDift, &cfgr));
    EXPECT_EQ(cfgr.policy(kTypeAluAdd), ForwardPolicy::kAlways);
    EXPECT_EQ(cfgr.policy(kTypeAluShift), ForwardPolicy::kAlways);
    EXPECT_EQ(cfgr.policy(kTypeLoadWord), ForwardPolicy::kAlways);
    EXPECT_EQ(cfgr.policy(kTypeIndirectJump), ForwardPolicy::kAlways);
    EXPECT_EQ(cfgr.policy(kTypeSethi), ForwardPolicy::kAlways);
    EXPECT_EQ(cfgr.policy(kTypeBranch), ForwardPolicy::kIgnore);
    EXPECT_EQ(cfgr.policy(kTypeNop), ForwardPolicy::kIgnore);
}

}  // namespace
}  // namespace flexcore
