/** @file Meta-data cache tests: address mapping, bit-mask writes. */

#include "memory/meta_cache.h"

#include <gtest/gtest.h>

namespace flexcore {
namespace {

class MetaCacheTest : public ::testing::Test
{
  protected:
    StatGroup stats_{"test"};
};

TEST_F(MetaCacheTest, MappingOneBitPerWord)
{
    // 1-bit tags: one meta byte covers 8 data words (32 data bytes).
    const Addr base = 0x40000000;
    EXPECT_EQ(MetaCache::metaByteAddr(base, 0x0, 1), base);
    EXPECT_EQ(MetaCache::metaByteAddr(base, 0x1c, 1), base);
    EXPECT_EQ(MetaCache::metaByteAddr(base, 0x20, 1), base + 1);
    EXPECT_EQ(MetaCache::metaByteAddr(base, 32 * 1024, 1),
              base + 1024);
}

TEST_F(MetaCacheTest, MappingFourBitsPerWord)
{
    const Addr base = 0x40000000;
    EXPECT_EQ(MetaCache::metaByteAddr(base, 0x0, 4), base);
    EXPECT_EQ(MetaCache::metaByteAddr(base, 0x4, 4), base);
    EXPECT_EQ(MetaCache::metaByteAddr(base, 0x8, 4), base + 1);
}

TEST_F(MetaCacheTest, MappingEightBitsPerWord)
{
    const Addr base = 0x40000000;
    EXPECT_EQ(MetaCache::metaByteAddr(base, 0x0, 8), base);
    EXPECT_EQ(MetaCache::metaByteAddr(base, 0x4, 8), base + 1);
    EXPECT_EQ(MetaCache::metaByteAddr(base, 0x100, 8), base + 0x40);
}

TEST_F(MetaCacheTest, AdjacentWordsShareMetaLines)
{
    // The BC footprint amplification: with 8-bit tags a 32-byte meta
    // line covers only 128 data bytes, vs 1 KB with 1-bit tags.
    const Addr base = 0x40000000;
    const Addr line0_first = MetaCache::metaByteAddr(base, 0, 8) / 32;
    const Addr line0_last =
        MetaCache::metaByteAddr(base, 124, 8) / 32;
    const Addr line1 = MetaCache::metaByteAddr(base, 128, 8) / 32;
    EXPECT_EQ(line0_first, line0_last);
    EXPECT_EQ(line1, line0_first + 1);
}

TEST_F(MetaCacheTest, WriteCostReflectsBitMaskSupport)
{
    MetaCache with_mask(&stats_, {4096, 32, 4}, true);
    EXPECT_EQ(with_mask.writeAccessCost(), 1u);
    StatGroup other("other");
    MetaCache without_mask(&other, {4096, 32, 4}, false);
    EXPECT_EQ(without_mask.writeAccessCost(), 2u);
}

TEST_F(MetaCacheTest, WriteBackBehavior)
{
    MetaCache cache(&stats_, {1024, 32, 2}, true);
    EXPECT_FALSE(cache.access(0x40000000, true));   // write miss
    cache.fill(0x40000000, true);                   // write-allocate
    EXPECT_TRUE(cache.access(0x40000000, false));
    // Evict via same-set fills; the dirty victim must be reported.
    const Cache::FillResult a = cache.fill(0x40000200, false);
    EXPECT_FALSE(a.evicted_dirty);
    const Cache::FillResult b = cache.fill(0x40000400, false);
    EXPECT_TRUE(b.evicted_dirty);
    EXPECT_EQ(b.victim_addr, 0x40000000u);
}

TEST_F(MetaCacheTest, HitsAndMissesTracked)
{
    MetaCache cache(&stats_, {4096, 32, 4}, true);
    cache.access(0x40000000, false);
    cache.fill(0x40000000, false);
    cache.access(0x40000000, false);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
}

using MetaCacheDeathTest = MetaCacheTest;

TEST_F(MetaCacheDeathTest, RejectsUnsupportedTagWidth)
{
    EXPECT_DEATH(MetaCache::metaByteAddr(0x40000000, 0, 2),
                 "unsupported tag width");
}

}  // namespace
}  // namespace flexcore
