/** @file Tokenizer tests. */

#include "assembler/lexer.h"

#include <gtest/gtest.h>

namespace flexcore {
namespace {

std::vector<Token>
lex(const std::string &line)
{
    std::vector<Token> tokens;
    std::string error;
    EXPECT_TRUE(tokenizeLine(line, &tokens, &error)) << error;
    return tokens;
}

TEST(Lexer, BasicInstruction)
{
    const auto tokens = lex("add %o0, %o1, %o2");
    ASSERT_EQ(tokens.size(), 7u);   // incl kEnd
    EXPECT_EQ(tokens[0].kind, TokKind::kIdent);
    EXPECT_EQ(tokens[0].text, "add");
    EXPECT_EQ(tokens[1].kind, TokKind::kPercent);
    EXPECT_EQ(tokens[1].text, "o0");
    EXPECT_EQ(tokens[2].kind, TokKind::kComma);
    EXPECT_EQ(tokens.back().kind, TokKind::kEnd);
}

TEST(Lexer, NumbersDecimalAndHex)
{
    const auto tokens = lex("123 0x1f 0");
    EXPECT_EQ(tokens[0].kind, TokKind::kNumber);
    EXPECT_EQ(tokens[0].value, 123);
    EXPECT_EQ(tokens[1].value, 0x1f);
    EXPECT_EQ(tokens[2].value, 0);
}

TEST(Lexer, CommentsEndTheLine)
{
    for (const char *comment : {"; comment", "! comment", "# comment"}) {
        const auto tokens = lex(std::string("nop ") + comment);
        ASSERT_EQ(tokens.size(), 2u);
        EXPECT_EQ(tokens[0].text, "nop");
    }
}

TEST(Lexer, EmptyAndWhitespaceLines)
{
    EXPECT_EQ(lex("").size(), 1u);
    EXPECT_EQ(lex("   \t  ").size(), 1u);
    EXPECT_EQ(lex("; only a comment").size(), 1u);
}

TEST(Lexer, MemoryOperandPunctuation)
{
    const auto tokens = lex("ld [%o0+4], %o1");
    EXPECT_EQ(tokens[1].kind, TokKind::kLBracket);
    EXPECT_EQ(tokens[2].kind, TokKind::kPercent);
    EXPECT_EQ(tokens[3].kind, TokKind::kPlus);
    EXPECT_EQ(tokens[4].kind, TokKind::kNumber);
    EXPECT_EQ(tokens[5].kind, TokKind::kRBracket);
}

TEST(Lexer, StringEscapes)
{
    const auto tokens = lex(R"(.asciz "a\nb\tc\"d\\")");
    ASSERT_GE(tokens.size(), 2u);
    EXPECT_EQ(tokens[1].kind, TokKind::kString);
    EXPECT_EQ(tokens[1].text, "a\nb\tc\"d\\");
}

TEST(Lexer, LabelColon)
{
    const auto tokens = lex("loop: add %o0, 1, %o0");
    EXPECT_EQ(tokens[0].text, "loop");
    EXPECT_EQ(tokens[1].kind, TokKind::kColon);
}

TEST(Lexer, DirectiveAndDottedIdent)
{
    const auto tokens = lex(".word m.settag");
    EXPECT_EQ(tokens[0].text, ".word");
    EXPECT_EQ(tokens[1].text, "m.settag");
}

TEST(Lexer, ErrorsOnMalformedInput)
{
    std::vector<Token> tokens;
    std::string error;
    EXPECT_FALSE(tokenizeLine("ld [%o0], @", &tokens, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(tokenizeLine("\"unterminated", &tokens, &error));
    EXPECT_FALSE(tokenizeLine("mov % , %o0", &tokens, &error));
}

TEST(Lexer, NegativeHandledAsMinusToken)
{
    const auto tokens = lex("sub %o0, -42, %o1");
    EXPECT_EQ(tokens[3].kind, TokKind::kMinus);
    EXPECT_EQ(tokens[4].kind, TokKind::kNumber);
    EXPECT_EQ(tokens[4].value, 42);
}

TEST(Lexer, HiLoAsPercentTokens)
{
    const auto tokens = lex("sethi %hi(0x12345678), %o0");
    EXPECT_EQ(tokens[1].kind, TokKind::kPercent);
    EXPECT_EQ(tokens[1].text, "hi");
    EXPECT_EQ(tokens[2].kind, TokKind::kLParen);
}

}  // namespace
}  // namespace flexcore
