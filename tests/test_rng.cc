/** @file Unit tests for the deterministic RNG. */

#include "common/rng.h"

#include <gtest/gtest.h>

namespace flexcore {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next64() == b.next64();
    EXPECT_LT(same, 2);
}

TEST(Rng, ZeroSeedIsUsable)
{
    Rng rng(0);
    EXPECT_NE(rng.next64(), 0u);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const u32 v = rng.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, RealInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(13);
    int hits = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

}  // namespace
}  // namespace flexcore
