/**
 * @file
 * Tests for the unified extension registry: every registered
 * descriptor must agree with the monitor instances its factory
 * builds, with the synthesis inventories its builders produce, and
 * with the name round-trip the CLI tools rely on.
 */

#include "extensions/registry.h"

#include <gtest/gtest.h>

#include "monitors/monitor.h"
#include "monitors/software.h"
#include "synth/extension_synth.h"

namespace flexcore {
namespace {

TEST(ExtensionRegistry, AllNineExtensionsRegistered)
{
    const ExtensionRegistry &registry = ExtensionRegistry::instance();
    EXPECT_EQ(registry.all().size(), 8u);
    for (MonitorKind kind :
         {MonitorKind::kUmc, MonitorKind::kDift, MonitorKind::kBc,
          MonitorKind::kSec, MonitorKind::kProf, MonitorKind::kMemProt,
          MonitorKind::kWatch, MonitorKind::kRefCount}) {
        EXPECT_NE(registry.find(kind), nullptr)
            << monitorKindName(kind);
    }
    // The ninth "extension" is the software-instrumentation family.
    EXPECT_EQ(registry.softwareModelKinds().size(), 4u);
    EXPECT_EQ(registry.find(MonitorKind::kNone), nullptr);
}

TEST(ExtensionRegistry, NameRoundTripsThroughParse)
{
    for (const ExtensionDescriptor &desc :
         ExtensionRegistry::instance().all()) {
        MonitorKind parsed = MonitorKind::kNone;
        EXPECT_TRUE(parseMonitorKind(desc.name, &parsed)) << desc.name;
        EXPECT_EQ(parsed, desc.kind) << desc.name;
        EXPECT_EQ(monitorKindName(desc.kind), desc.name);
    }
    MonitorKind none = MonitorKind::kUmc;
    EXPECT_TRUE(parseMonitorKind("none", &none));
    EXPECT_EQ(none, MonitorKind::kNone);
}

TEST(ExtensionRegistry, ParseIsCaseInsensitiveAndKnowsAliases)
{
    MonitorKind kind = MonitorKind::kNone;
    EXPECT_TRUE(parseMonitorKind("UMC", &kind));
    EXPECT_EQ(kind, MonitorKind::kUmc);
    EXPECT_TRUE(parseMonitorKind("Dift", &kind));
    EXPECT_EQ(kind, MonitorKind::kDift);
    EXPECT_TRUE(parseMonitorKind("NONE", &kind));
    EXPECT_EQ(kind, MonitorKind::kNone);

    // The old "refcount" spelling stays accepted, but the canonical
    // name (the one in every JSON document) is "refcnt".
    EXPECT_TRUE(parseMonitorKind("refcount", &kind));
    EXPECT_EQ(kind, MonitorKind::kRefCount);
    EXPECT_TRUE(parseMonitorKind("RefCount", &kind));
    EXPECT_EQ(kind, MonitorKind::kRefCount);
    EXPECT_EQ(monitorKindName(MonitorKind::kRefCount), "refcnt");

    EXPECT_FALSE(parseMonitorKind("bogus", &kind));
    EXPECT_FALSE(parseMonitorKind("", &kind));
}

TEST(ExtensionRegistry, FactoryAgreesWithDescriptor)
{
    for (const ExtensionDescriptor &desc :
         ExtensionRegistry::instance().all()) {
        const std::unique_ptr<Monitor> monitor =
            makeMonitor(desc.kind);
        ASSERT_NE(monitor, nullptr) << desc.name;
        EXPECT_EQ(monitor->pipelineDepth(), desc.pipeline_depth)
            << desc.name;
        EXPECT_EQ(monitor->tagBitsPerWord(), desc.tag_bits_per_word)
            << desc.name;
        EXPECT_EQ(monitor->name(), desc.name);
    }
    EXPECT_EQ(makeMonitor(MonitorKind::kNone), nullptr);
}

TEST(ExtensionRegistry, SynthPipelineRegistersMatchDeclaredDepth)
{
    // Every fabric inventory carries one pipeline-register bank whose
    // stage count is the descriptor's pipeline depth; the builders
    // take it from the descriptor, and this pins that contract.
    for (const ExtensionDescriptor &desc :
         ExtensionRegistry::instance().all()) {
        const ExtensionSynth ext = extensionSynth(desc.kind);
        bool found = false;
        for (const Primitive &prim : ext.fabric.primitives) {
            if (prim.kind == Primitive::Kind::kRegister &&
                prim.count == desc.pipeline_depth)
                found = true;
        }
        EXPECT_TRUE(found)
            << desc.name << ": no " << desc.pipeline_depth
            << "-stage pipeline register bank in the fabric inventory";
        EXPECT_EQ(ext.tapped_groups, desc.tapped_groups) << desc.name;
        EXPECT_EQ(ext.fabric.name,
                  std::string(desc.name) + "-fabric");
    }
}

TEST(ExtensionRegistry, DefaultFlexPeriodNonzeroAndMatchesConfig)
{
    for (const ExtensionDescriptor &desc :
         ExtensionRegistry::instance().all()) {
        EXPECT_GT(desc.default_flex_period, 0u) << desc.name;
        EXPECT_EQ(defaultFlexPeriod(desc.kind),
                  desc.default_flex_period)
            << desc.name;
    }
}

TEST(ExtensionRegistry, PaperGridIsTheFourEvaluatedExtensions)
{
    const std::vector<MonitorKind> grid =
        ExtensionRegistry::instance().paperGrid();
    ASSERT_EQ(grid.size(), 4u);
    EXPECT_EQ(grid[0], MonitorKind::kUmc);
    EXPECT_EQ(grid[1], MonitorKind::kDift);
    EXPECT_EQ(grid[2], MonitorKind::kBc);
    EXPECT_EQ(grid[3], MonitorKind::kSec);
}

TEST(ExtensionRegistry, CfgrSpecForwardsSomethingForEveryExtension)
{
    for (const ExtensionDescriptor &desc :
         ExtensionRegistry::instance().all()) {
        EXPECT_FALSE(desc.forward.empty()) << desc.name;
        Cfgr cfgr;
        programCfgr(desc, &cfgr);
        unsigned forwarded = 0;
        for (unsigned t = 0; t < kNumInstrTypes; ++t) {
            if (cfgr.policy(static_cast<InstrType>(t)) !=
                ForwardPolicy::kIgnore)
                ++forwarded;
        }
        EXPECT_GT(forwarded, 0u) << desc.name;
    }
    Cfgr cfgr;
    EXPECT_FALSE(programCfgr(MonitorKind::kNone, &cfgr));
    EXPECT_TRUE(programCfgr(MonitorKind::kUmc, &cfgr));
}

TEST(ExtensionRegistry, SoftwareModelsCoverThePaperExtensions)
{
    const ExtensionRegistry &registry = ExtensionRegistry::instance();
    EXPECT_EQ(registry.softwareModel(MonitorKind::kUmc),
              softwareUmc());
    EXPECT_EQ(registry.softwareModel(MonitorKind::kDift),
              softwareDift());
    EXPECT_EQ(registry.softwareModel(MonitorKind::kBc), softwareBc());
    EXPECT_EQ(registry.softwareModel(MonitorKind::kSec),
              softwareSec());
    EXPECT_EQ(registry.softwareModel(MonitorKind::kProf), nullptr);
    EXPECT_EQ(registry.softwareModel(MonitorKind::kNone), nullptr);
}

TEST(ExtensionRegistry, ListingNamesEveryExtensionWithDocs)
{
    const std::string text = listMonitorsText();
    for (const ExtensionDescriptor &desc :
         ExtensionRegistry::instance().all()) {
        EXPECT_NE(text.find(desc.name), std::string::npos) << desc.name;
        EXPECT_NE(text.find(desc.doc), std::string::npos) << desc.name;
        EXPECT_FALSE(desc.doc.empty()) << desc.name;
    }
    EXPECT_NE(text.find("software"), std::string::npos);
    EXPECT_NE(text.find("refcount"), std::string::npos);   // the alias
}

TEST(ExtensionRegistry, KnownMonitorNamesListsCanonicalNames)
{
    const std::string names = knownMonitorNames();
    EXPECT_NE(names.find("umc"), std::string::npos);
    EXPECT_NE(names.find("refcnt"), std::string::npos);
    EXPECT_EQ(names.find("refcount"), std::string::npos);
}

}  // namespace
}  // namespace flexcore
