/** @file Software-instrumentation model tests. */

#include "monitors/software.h"

#include <gtest/gtest.h>

namespace flexcore {
namespace {

Instruction
instOfType(Op op)
{
    Instruction inst;
    inst.op = op;
    inst.type = classOf(op);
    inst.valid = true;
    return inst;
}

unsigned
countKind(const std::vector<SwMicroOp> &ops, SwMicroOp::Kind kind)
{
    unsigned n = 0;
    for (const SwMicroOp &op : ops)
        n += op.kind == kind;
    return n;
}

TEST(Software, DiftExpandsAluAndMemory)
{
    const SoftwareMonitor *dift = softwareDift();
    std::vector<SwMicroOp> ops;
    dift->expand(instOfType(Op::kAdd), 0, &ops);
    EXPECT_GE(ops.size(), 1u);
    EXPECT_EQ(countKind(ops, SwMicroOp::Kind::kLoad), 0u);

    ops.clear();
    dift->expand(instOfType(Op::kLd), 0x2000, &ops);
    EXPECT_EQ(countKind(ops, SwMicroOp::Kind::kLoad), 1u);

    ops.clear();
    dift->expand(instOfType(Op::kSt), 0x2000, &ops);
    EXPECT_EQ(countKind(ops, SwMicroOp::Kind::kStore), 1u);

    ops.clear();
    dift->expand(instOfType(Op::kJmpl), 0, &ops);
    EXPECT_GE(ops.size(), 1u);
}

TEST(Software, ShadowAddressesAreAlignedAndInShadowRegion)
{
    const SoftwareMonitor *dift = softwareDift();
    std::vector<SwMicroOp> ops;
    dift->expand(instOfType(Op::kLd), 0x00123457, &ops);
    bool found = false;
    for (const SwMicroOp &op : ops) {
        if (op.kind == SwMicroOp::Kind::kLoad) {
            found = true;
            EXPECT_EQ(op.addr % 4, 0u);
            EXPECT_GE(op.addr, kSwShadowBase);
        }
    }
    EXPECT_TRUE(found);
}

TEST(Software, BranchesAndNopsNotInstrumented)
{
    for (const SoftwareMonitor *monitor :
         {softwareDift(), softwareUmc(), softwareBc(), softwareSec()}) {
        std::vector<SwMicroOp> ops;
        monitor->expand(instOfType(Op::kBicc), 0, &ops);
        EXPECT_TRUE(ops.empty()) << monitor->name();
        Instruction nop = makeNop();
        monitor->expand(nop, 0, &ops);
        EXPECT_TRUE(ops.empty()) << monitor->name();
    }
}

TEST(Software, UmcOnlyInstrumentsMemory)
{
    const SoftwareMonitor *umc = softwareUmc();
    std::vector<SwMicroOp> ops;
    umc->expand(instOfType(Op::kAdd), 0, &ops);
    EXPECT_TRUE(ops.empty());
    umc->expand(instOfType(Op::kLdub), 0x2000, &ops);
    EXPECT_GE(ops.size(), 3u);   // Purify-class checks are heavy
}

TEST(Software, SecDuplicatesAluWork)
{
    const SoftwareMonitor *sec = softwareSec();
    std::vector<SwMicroOp> ops;
    sec->expand(instOfType(Op::kXor), 0, &ops);
    EXPECT_EQ(countKind(ops, SwMicroOp::Kind::kAlu), 2u);
    EXPECT_EQ(countKind(ops, SwMicroOp::Kind::kLoad), 0u);
}

TEST(Software, RelativeCostOrdering)
{
    // Per memory access: UMC (Purify-class) > DIFT > BC in overhead.
    auto memCost = [](const SoftwareMonitor *monitor) {
        std::vector<SwMicroOp> ops;
        monitor->expand(instOfType(Op::kLd), 0x2000, &ops);
        return ops.size();
    };
    EXPECT_GT(memCost(softwareUmc()), memCost(softwareDift()));
    EXPECT_GT(memCost(softwareDift()), memCost(softwareBc()));
}

}  // namespace
}  // namespace flexcore
