/** @file PROF monitor unit + integration tests. */

#include "monitors/prof.h"

#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "extensions/registry.h"
#include "sim/system.h"

namespace flexcore {
namespace {

CommitPacket
packet(Op op, Addr addr = 0, bool taken = false)
{
    CommitPacket pkt;
    pkt.di.op = op;
    pkt.di.type = classOf(op);
    pkt.di.valid = true;
    pkt.opcode = static_cast<u8>(pkt.di.type);
    pkt.addr = addr;
    pkt.branch = taken;
    return pkt;
}

CommitPacket
readCounter(u8 selector)
{
    CommitPacket pkt;
    pkt.di.op = Op::kCpop1;
    pkt.di.type = kTypeCpop1;
    pkt.di.cpop_fn = CpopFn::kReadTag;
    pkt.di.simm = selector;
    pkt.di.valid = true;
    pkt.opcode = kTypeCpop1;
    return pkt;
}

TEST(Prof, CountsInstructionMix)
{
    ProfMonitor prof;
    MonitorResult ignore;
    prof.process(packet(Op::kAdd), &ignore);
    prof.process(packet(Op::kAdd), &ignore);
    prof.process(packet(Op::kLd, 0x100), &ignore);
    prof.process(packet(Op::kSt, 0x104), &ignore);
    prof.process(packet(Op::kBicc, 0, true), &ignore);
    prof.process(packet(Op::kBicc, 0, false), &ignore);

    MonitorResult r;
    prof.process(readCounter(ProfMonitor::kSelPackets), &r);
    EXPECT_EQ(r.bfifo, 6u);
    prof.process(readCounter(ProfMonitor::kSelLoads), &r);
    EXPECT_EQ(r.bfifo, 1u);
    prof.process(readCounter(ProfMonitor::kSelStores), &r);
    EXPECT_EQ(r.bfifo, 1u);
    prof.process(readCounter(ProfMonitor::kSelAlu), &r);
    EXPECT_EQ(r.bfifo, 2u);
    prof.process(readCounter(ProfMonitor::kSelBranchesTaken), &r);
    EXPECT_EQ(r.bfifo, 1u);
}

TEST(Prof, WorkingSetCountsDistinctWords)
{
    ProfMonitor prof;
    for (Addr addr : {0x100u, 0x100u, 0x102u}) {   // one word
        MonitorResult r;
        prof.process(packet(Op::kLd, addr), &r);
    }
    MonitorResult r;
    prof.process(packet(Op::kSt, 0x104), &r);      // a second word
    EXPECT_EQ(prof.touchedWords(), 2u);
}

TEST(Prof, FirstTouchWritesMetaLaterTouchesRead)
{
    ProfMonitor prof;
    MonitorResult first;
    prof.process(packet(Op::kLd, 0x200), &first);
    ASSERT_EQ(first.num_ops, 1u);
    EXPECT_TRUE(first.ops[0].is_write);
    MonitorResult second;
    prof.process(packet(Op::kLd, 0x200), &second);
    ASSERT_EQ(second.num_ops, 1u);
    EXPECT_FALSE(second.ops[0].is_write);
}

TEST(Prof, NeverTraps)
{
    ProfMonitor prof;
    MonitorResult r;
    prof.process(packet(Op::kLd, 0xdead0000), &r);
    EXPECT_FALSE(r.trap);
}

TEST(Prof, CfgrUsesDroppablePolicyForTrace)
{
    Cfgr cfgr;
    ASSERT_TRUE(programCfgr(MonitorKind::kProf, &cfgr));
    // Profiling tolerates sampling: trace classes may drop.
    EXPECT_EQ(cfgr.policy(kTypeLoadWord), ForwardPolicy::kIfNotFull);
    EXPECT_EQ(cfgr.policy(kTypeAluAdd), ForwardPolicy::kIfNotFull);
    EXPECT_EQ(cfgr.policy(kTypeBranch), ForwardPolicy::kIfNotFull);
    // Counter reads must not be dropped.
    EXPECT_EQ(cfgr.policy(kTypeCpop1), ForwardPolicy::kAlways);
}

TEST(Prof, ResetClearsCounters)
{
    ProfMonitor prof;
    MonitorResult ignore;
    prof.process(packet(Op::kLd, 0x100), &ignore);
    prof.reset();
    EXPECT_EQ(prof.packets(), 0u);
    EXPECT_EQ(prof.touchedWords(), 0u);
}

TEST(Prof, EndToEndSelfProfile)
{
    // A program reads its own load count back through the BFIFO.
    const char *source = R"(
        .org 0x1000
_start: set buf, %l0
        st %g0, [%l0]
        ld [%l0], %o1
        ld [%l0], %o1
        ld [%l0], %o1
        m.read %o0, 1      ; loads so far
        ta 0
        nop
        .align 4
buf:    .word 0
)";
    SystemConfig config;
    config.monitor = MonitorKind::kProf;
    config.mode = ImplMode::kFlexFabric;
    System system(config);
    system.load(Assembler::assembleOrDie(source));
    const RunResult result = system.run();
    EXPECT_EQ(result.exit, RunResult::Exit::kExited);
    EXPECT_EQ(result.exit_code, 3u);
}

TEST(Prof, RunsWholeBenchmarkWithoutStalls)
{
    // With the droppable policy, profiling must never stall commit:
    // commit_stalls stays zero even with a tiny FIFO.
    const char *source = R"(
        .org 0x1000
_start: set buf, %l0
        mov 200, %l1
loop:   st %l1, [%l0]
        ld [%l0], %o0
        subcc %l1, 1, %l1
        bne loop
        nop
        mov 0, %o0
        ta 0
        nop
        .align 4
buf:    .word 0
)";
    SystemConfig config;
    config.monitor = MonitorKind::kProf;
    config.mode = ImplMode::kFlexFabric;
    config.iface.fifo_depth = 2;
    System system(config);
    system.load(Assembler::assembleOrDie(source));
    const RunResult result = system.run();
    EXPECT_EQ(result.exit, RunResult::Exit::kExited);
    EXPECT_EQ(system.iface()->stallCycles(), 0u);
    EXPECT_GT(system.iface()->droppedCount(), 0u);   // sampling
}

}  // namespace
}  // namespace flexcore
