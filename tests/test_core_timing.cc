/**
 * @file
 * Focused timing tests for the core model (exact stall accounting) and
 * cross-cutting correctness properties: meta-data surviving register
 * window spills, and the spill traffic being visible to monitors.
 */

#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "monitors/dift.h"
#include "sim/system.h"
#include "workloads/scenarios.h"

namespace flexcore {
namespace {

struct RunState
{
    RunResult result;
    std::unique_ptr<System> system;
};

RunState
run(const std::string &body, SystemConfig config = {})
{
    RunState r;
    r.system = std::make_unique<System>(std::move(config));
    r.system->load(Assembler::assembleOrDie(
        "        .org 0x1000\n_start: set 0x003ffff0, %sp\n" + body));
    r.result = r.system->run();
    return r;
}

/** Cycles for a straight-line body, minus the fixed prologue cost. */
u64
cyclesFor(const std::string &body)
{
    const RunState r = run(body + "        ta 0\n        nop\n");
    EXPECT_EQ(r.result.exit, RunResult::Exit::kExited);
    return r.result.cycles;
}

TEST(CoreTiming, TakenBranchCostsOneBubble)
{
    // Both bodies execute the same instruction count; the second takes
    // a branch each iteration.
    const std::string no_branch =
        "        mov 0, %o0\n"
        "        add %o0, 1, %o0\n"
        "        add %o0, 1, %o0\n"
        "        add %o0, 1, %o0\n";
    const std::string with_branch =
        "        mov 0, %o0\n"
        "        ba skip\n"
        "        add %o0, 1, %o0\n"
        "skip:   add %o0, 1, %o0\n";
    const CoreParams params;
    EXPECT_EQ(cyclesFor(with_branch),
              cyclesFor(no_branch) + params.branch_taken_extra);
}

TEST(CoreTiming, UntakenBranchIsFree)
{
    const std::string untaken =
        "        cmp %g0, %g0\n"
        "        bne skip\n"
        "        nop\n"
        "skip:   nop\n";
    const std::string plain =
        "        cmp %g0, %g0\n"
        "        nop\n"
        "        nop\n"
        "        nop\n";
    EXPECT_EQ(cyclesFor(untaken), cyclesFor(plain));
}

TEST(CoreTiming, LoadDelayAccounted)
{
    const CoreParams params;
    const std::string loads =
        "        set buf, %l0\n"
        "        ld [%l0], %o0\n"
        "        ld [%l0], %o0\n"
        "        ta 0\n        nop\n"
        "        .align 4\nbuf: .word 1\n";
    const std::string adds =
        "        set buf, %l0\n"
        "        add %l0, 0, %o0\n"
        "        add %l0, 0, %o0\n"
        "        ta 0\n        nop\n"
        "        .align 4\nbuf: .word 1\n";
    const RunState a = run(loads);
    const RunState b = run(adds);
    // Two loads add 2*load_extra plus one cold D-cache miss.
    const SdramTimings timings;
    EXPECT_EQ(a.result.cycles,
              b.result.cycles + 2 * params.load_extra +
                  timings.line_read);
}

TEST(CoreTiming, DivLatencyDominates)
{
    const CoreParams params;
    const u64 with_div = cyclesFor(
        "        wr %g0, %y\n"
        "        mov 100, %o0\n"
        "        udiv %o0, %o0, %o1\n");
    const u64 without = cyclesFor(
        "        wr %g0, %y\n"
        "        mov 100, %o0\n"
        "        add %o0, %o0, %o1\n");
    EXPECT_EQ(with_div, without + params.div_extra);
}

TEST(CoreTiming, WindowSpillWritesRealMemory)
{
    // Recurse deep enough to spill, then verify the spilled locals
    // landed at the spilled frame's stack addresses.
    const std::string body = R"(
        mov 10, %o0
        call recurse
        nop
        ta 0
        nop
recurse: save %sp, -96, %sp
        set 0x1234, %l3        ; a recognizable local
        tst %i0
        be leaf
        nop
        sub %i0, 1, %o0
        call recurse
        nop
leaf:   ret
        restore
)";
    RunState r = run(body);
    EXPECT_EQ(r.result.exit, RunResult::Exit::kExited);
    EXPECT_GT(r.system->stats().lookup("core.window_spills"), 0u);
    // Each frame is 96 bytes below the caller's %sp; the spilled
    // windows' %l3 slots (offset 12 in the save area) must hold
    // 0x1234. The deepest spilled frame is the outermost `recurse`.
    const Addr outer_sp = 0x003ffff0 - 96;
    EXPECT_EQ(r.system->memory().read32(outer_sp + 12), 0x1234u);
}

TEST(CoreTiming, TaintSurvivesWindowSpill)
{
    // The defining cross-component property: a tainted register that
    // gets spilled to the stack and refilled must still be tainted,
    // because the spill/fill micro-ops are forwarded to the fabric as
    // ordinary stores/loads (exactly like a software trap handler's).
    const std::string body = R"(
        set input, %l0
        m.setmtag [%l0], 1
        ld [%l0], %l7          ; %l7 is tainted (a local: will spill)
        mov 9, %o0
        call recurse           ; deeper than 7 windows: %l7 spills
        nop
        add %l7, 0, %l6        ; propagate after refill
        jmpl %l6, %o7          ; tainted jump -> must trap
        nop
        mov 0, %o0
        ta 0
        nop
recurse: save %sp, -96, %sp
        tst %i0
        be leaf
        nop
        sub %i0, 1, %o0
        call recurse
        nop
leaf:   ret
        restore
        .align 4
input:  .word 0x4000           ; an aligned, plausible address
)";
    SystemConfig config;
    config.monitor = MonitorKind::kDift;
    config.mode = ImplMode::kFlexFabric;
    RunState r = run(body, std::move(config));
    EXPECT_GT(r.system->stats().lookup("core.window_spills"), 0u);
    EXPECT_EQ(r.result.exit, RunResult::Exit::kMonitorTrap)
        << r.result.trap_reason;
    EXPECT_EQ(r.result.trap_reason, "tainted indirect jump target");
}

TEST(CoreTiming, SpillTrafficForwardedToFabric)
{
    const std::string body = R"(
        mov 9, %o0
        call recurse
        nop
        ta 0
        nop
recurse: save %sp, -96, %sp
        tst %i0
        be leaf
        nop
        sub %i0, 1, %o0
        call recurse
        nop
leaf:   ret
        restore
)";
    SystemConfig config;
    config.monitor = MonitorKind::kUmc;
    config.mode = ImplMode::kFlexFabric;
    RunState r = run(body, std::move(config));
    EXPECT_EQ(r.result.exit, RunResult::Exit::kExited);
    // 16 stores per spill + 16 loads per fill, all forwarded (UMC
    // forwards loads and stores), and none may trap: the fills read
    // exactly what the spills wrote.
    const u64 spills = r.system->stats().lookup("core.window_spills");
    const u64 fills = r.system->stats().lookup("core.window_fills");
    EXPECT_GT(spills, 0u);
    EXPECT_EQ(spills, fills);
    EXPECT_GE(r.system->iface()->forwardedOfType(kTypeStoreWord),
              16 * spills);
    EXPECT_GE(r.system->iface()->forwardedOfType(kTypeLoadWord),
              16 * fills);
}

TEST(CoreTiming, DeterministicCycleCounts)
{
    const std::string body = R"(
        mov 50, %l0
loop:   subcc %l0, 1, %l0
        bne loop
        nop
        ta 0
        nop
)";
    const RunState a = run(body);
    const RunState b = run(body);
    EXPECT_EQ(a.result.cycles, b.result.cycles);
}

TEST(CoreTiming, StatsDumpContainsCoreTree)
{
    RunState r = run("        ta 0\n        nop\n");
    const std::string dump = r.system->stats().dump();
    EXPECT_NE(dump.find("system.core.instructions"), std::string::npos);
    EXPECT_NE(dump.find("system.icache.accesses"), std::string::npos);
    EXPECT_NE(dump.find("system.bus.busy_cycles"), std::string::npos);
}

// ---- Exhaustive cycle attribution ----------------------------------

/** Sum every CycleBucket counter of @p core. */
u64
bucketSum(const Core &core)
{
    u64 sum = 0;
    const auto n =
        static_cast<unsigned>(Core::CycleBucket::kNumBuckets);
    for (unsigned b = 0; b < n; ++b)
        sum += core.cyclesIn(static_cast<Core::CycleBucket>(b));
    return sum;
}

/** Run @p workload under @p config and assert exact accountability. */
void
expectAccountable(const Workload &workload, SystemConfig config)
{
    System system(std::move(config));
    system.load(Assembler::assembleOrDie(workload.source));
    const RunResult result = system.run();
    const Core &core = system.core();
    EXPECT_EQ(core.cycles(), result.cycles) << workload.name;
    EXPECT_EQ(bucketSum(core), core.cycles()) << workload.name;
    EXPECT_GT(core.cyclesIn(Core::CycleBucket::kCommit), 0u)
        << workload.name;
}

TEST(CycleAccounting, BaselineBucketsSumToTotal)
{
    expectAccountable(scenarioDiftBenign(), SystemConfig{});
}

TEST(CycleAccounting, UmcBucketsSumToTotal)
{
    SystemConfig config;
    config.monitor = MonitorKind::kUmc;
    config.mode = ImplMode::kFlexFabric;
    expectAccountable(scenarioUmcClean(), config);
    expectAccountable(scenarioUmcBug(), config);   // traps mid-run
}

TEST(CycleAccounting, DiftBucketsSumToTotal)
{
    SystemConfig config;
    config.monitor = MonitorKind::kDift;
    config.mode = ImplMode::kFlexFabric;
    expectAccountable(scenarioDiftBenign(), config);
    expectAccountable(scenarioDiftAttack(), config);
}

TEST(CycleAccounting, BcBucketsSumToTotal)
{
    SystemConfig config;
    config.monitor = MonitorKind::kBc;
    config.mode = ImplMode::kFlexFabric;
    expectAccountable(scenarioBcClean(), config);
    expectAccountable(scenarioBcOverflow(), config);
}

TEST(CycleAccounting, TinyFifoChargesFfifoFullCycles)
{
    // A 2-deep FIFO at the slowest fabric clock must back-pressure
    // commit; those stall cycles land in the kFfifoFull bucket and the
    // sum still matches.
    SystemConfig config;
    config.monitor = MonitorKind::kDift;
    config.mode = ImplMode::kFlexFabric;
    config.flex_period = 4;
    config.iface.fifo_depth = 2;
    System system(config);
    system.load(Assembler::assembleOrDie(scenarioDiftBenign().source));
    const RunResult result = system.run();
    EXPECT_EQ(result.exit, RunResult::Exit::kExited);
    const Core &core = system.core();
    EXPECT_GT(core.cyclesIn(Core::CycleBucket::kFfifoFull), 0u);
    EXPECT_EQ(bucketSum(core), core.cycles());
    EXPECT_EQ(core.cycles(), result.cycles);
}

TEST(CycleAccounting, PreciseExceptionsChargeAckWaitCycles)
{
    SystemConfig config;
    config.monitor = MonitorKind::kUmc;
    config.mode = ImplMode::kFlexFabric;
    config.precise_exceptions = true;
    System system(config);
    system.load(Assembler::assembleOrDie(scenarioUmcClean().source));
    const RunResult result = system.run();
    EXPECT_EQ(result.exit, RunResult::Exit::kExited);
    const Core &core = system.core();
    EXPECT_GT(core.cyclesIn(Core::CycleBucket::kAckWait), 0u);
    EXPECT_EQ(bucketSum(core), core.cycles());
    EXPECT_EQ(core.cycles(), result.cycles);
}

TEST(CycleAccounting, BucketCountersAppearInStatsTree)
{
    RunState r = run("        ta 0\n        nop\n");
    const StatGroup &stats = r.system->stats();
    for (const char *path :
         {"core.cycles", "core.commit_cycles", "core.latency_stalls",
          "core.imiss_wait", "core.dmiss_wait", "core.bus_queue_wait",
          "core.sb_wait", "core.ffifo_full", "core.ack_wait",
          "core.bfifo_wait", "core.drain_cycles"}) {
        EXPECT_TRUE(stats.tryLookup(path).has_value()) << path;
    }
}

TEST(CycleAccounting, HistogramSamplingMatchesCycleCount)
{
    // With SystemConfig::histograms on, the FFIFO occupancy histogram
    // takes exactly one sample per simulated cycle.
    SystemConfig config;
    config.monitor = MonitorKind::kDift;
    config.mode = ImplMode::kFlexFabric;
    config.histograms = true;
    System system(config);
    system.load(Assembler::assembleOrDie(scenarioDiftBenign().source));
    const RunResult result = system.run();
    EXPECT_EQ(result.exit, RunResult::Exit::kExited);
    EXPECT_EQ(system.iface()->occupancyHistogram().count(),
              result.cycles);
}

TEST(CycleAccounting, HistogramsOffByDefault)
{
    SystemConfig config;
    config.monitor = MonitorKind::kDift;
    config.mode = ImplMode::kFlexFabric;
    System system(config);
    system.load(Assembler::assembleOrDie(scenarioDiftBenign().source));
    (void)system.run();
    EXPECT_EQ(system.iface()->occupancyHistogram().count(), 0u);
}

TEST(CycleAccounting, TraceSinkRecordsStallEpisodes)
{
    SystemConfig config;
    config.monitor = MonitorKind::kDift;
    config.mode = ImplMode::kFlexFabric;
    System system(config);
    TraceBuffer sink;
    system.attachTrace(&sink);
    system.load(Assembler::assembleOrDie(scenarioDiftAttack().source));
    const RunResult result = system.run();
    EXPECT_EQ(result.exit, RunResult::Exit::kMonitorTrap);
    EXPECT_FALSE(sink.empty());
    const std::string json = sink.json();
    // The attack ends in a monitor trap instant event, and the cold
    // I-cache start shows up as a miss episode.
    EXPECT_NE(json.find("monitor_trap"), std::string::npos);
    EXPECT_NE(json.find("imiss_wait"), std::string::npos);
}

TEST(CycleAccounting, TraceDoesNotPerturbTiming)
{
    SystemConfig config;
    config.monitor = MonitorKind::kDift;
    config.mode = ImplMode::kFlexFabric;

    System plain(config);
    plain.load(Assembler::assembleOrDie(scenarioDiftBenign().source));
    const RunResult base = plain.run();

    SystemConfig config2 = config;
    config2.histograms = true;
    System traced(config2);
    TraceBuffer sink;
    traced.attachTrace(&sink);
    traced.load(Assembler::assembleOrDie(scenarioDiftBenign().source));
    const RunResult observed = traced.run();

    EXPECT_EQ(observed.cycles, base.cycles);
    EXPECT_EQ(observed.instructions, base.instructions);
}

}  // namespace
}  // namespace flexcore
