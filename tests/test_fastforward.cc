/**
 * @file
 * Fast-forward differential tests: the quiescence fast-forward in
 * System::run() must be an invisible optimization. Every observable
 * surface — the RunResult, the canonical stats JSON bytes, and the
 * full commit-trace hash — must be byte-identical with fast-forward
 * on and off, for clean exits and for trapping runs, with and without
 * a monitor on the fabric. (Debug builds additionally verify every
 * fast-forwarded stretch by lockstep single-stepping inside
 * System::fastForward.)
 */

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "isa/encoding.h"
#include "sim/sim_request.h"

namespace flexcore {
namespace {

std::string
readProgram(const char *name)
{
    const std::string path =
        std::string(FLEXCORE_TEST_DATA_DIR "/../../programs/") + name;
    std::ifstream file(path);
    EXPECT_TRUE(file.is_open()) << "cannot open " << path;
    std::stringstream source;
    source << file.rdbuf();
    return source.str();
}

struct Observed
{
    RunResult result;
    std::string stats_json;
    u64 trace_hash = 0;
};

Observed
observe(const std::string &source, MonitorKind monitor,
        bool fast_forward)
{
    SystemConfig config;
    config.monitor = monitor;
    config.mode = monitor == MonitorKind::kNone ? ImplMode::kBaseline
                                                : ImplMode::kFlexFabric;
    config.fast_forward = fast_forward;
    config.histograms = true;   // exercise bulk histogram sampling
    config.max_cycles = 2'000'000;

    u64 hash = 0xcbf29ce484222325ull;
    const auto mix = [&hash](u64 value) {
        for (unsigned i = 0; i < 8; ++i) {
            hash ^= (value >> (8 * i)) & 0xff;
            hash *= 0x100000001b3ull;
        }
    };

    Observed obs;
    SimOutcome outcome =
        SimRequest(config)
            .source(source)
            .statsJson()
            .tracer([&](Cycle cycle, Addr pc, const Instruction &inst) {
                mix(cycle);
                mix(pc);
                mix(encode(inst));
            })
            .run();
    obs.result = std::move(outcome.result);
    obs.stats_json = std::move(outcome.stats_json);
    obs.trace_hash = hash;
    return obs;
}

class FastForwardDifferential
    : public ::testing::TestWithParam<
          std::tuple<const char *, MonitorKind>>
{
};

TEST_P(FastForwardDifferential, OnAndOffAreByteIdentical)
{
    const auto [program, monitor] = GetParam();
    const std::string source = readProgram(program);
    ASSERT_FALSE(source.empty());

    const Observed on = observe(source, monitor, true);
    const Observed off = observe(source, monitor, false);

    EXPECT_EQ(on.result.exit, off.result.exit);
    EXPECT_EQ(on.result.exit_code, off.result.exit_code);
    EXPECT_EQ(on.result.cycles, off.result.cycles);
    EXPECT_EQ(on.result.instructions, off.result.instructions);
    EXPECT_EQ(on.result.console, off.result.console);
    EXPECT_EQ(on.result.trap_reason, off.result.trap_reason);
    EXPECT_EQ(on.result.trap.pc, off.result.trap.pc);
    EXPECT_EQ(on.trace_hash, off.trace_hash);
    // The strongest check: every counter, histogram bin, and formula
    // in the whole stats tree, byte for byte.
    EXPECT_EQ(on.stats_json, off.stats_json);
}

INSTANTIATE_TEST_SUITE_P(
    ProgramsByMonitor, FastForwardDifferential,
    ::testing::Combine(::testing::Values("fibonacci.s",
                                         "overflow_attack.s"),
                       ::testing::Values(MonitorKind::kNone,
                                         MonitorKind::kUmc,
                                         MonitorKind::kDift,
                                         MonitorKind::kBc)),
    [](const auto &info) {
        std::string name = std::get<0>(info.param);
        name = name.substr(0, name.find('.'));
        name += '_';
        name += monitorKindName(std::get<1>(info.param));
        return name;
    });

/** Fast-forward must respect a max-cycles budget exactly. */
TEST(FastForward, MaxCyclesBudgetIsExact)
{
    const std::string source = readProgram("fibonacci.s");
    for (const u64 budget : {100ull, 1001ull, 4242ull}) {
        SystemConfig on;
        on.max_cycles = budget;
        SystemConfig off;
        off.max_cycles = budget;
        off.fast_forward = false;
        const SimOutcome a = SimRequest(on).source(source).run();
        const SimOutcome b = SimRequest(off).source(source).run();
        EXPECT_EQ(a.result.exit, RunResult::Exit::kMaxCycles);
        EXPECT_EQ(a.result.cycles, b.result.cycles) << budget;
        EXPECT_EQ(a.result.instructions, b.result.instructions)
            << budget;
    }
}

}  // namespace
}  // namespace flexcore
