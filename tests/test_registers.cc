/** @file Unit tests for register naming and window mapping. */

#include "isa/registers.h"

#include <gtest/gtest.h>

#include "core/regfile.h"

namespace flexcore {
namespace {

TEST(Registers, ArchRegNames)
{
    EXPECT_EQ(archRegName(0), "%g0");
    EXPECT_EQ(archRegName(7), "%g7");
    EXPECT_EQ(archRegName(8), "%o0");
    EXPECT_EQ(archRegName(14), "%o6");
    EXPECT_EQ(archRegName(16), "%l0");
    EXPECT_EQ(archRegName(24), "%i0");
    EXPECT_EQ(archRegName(31), "%i7");
}

TEST(Registers, ParseStandardNames)
{
    unsigned reg = 99;
    EXPECT_TRUE(parseRegName("%g0", &reg));
    EXPECT_EQ(reg, 0u);
    EXPECT_TRUE(parseRegName("%o3", &reg));
    EXPECT_EQ(reg, 11u);
    EXPECT_TRUE(parseRegName("%l7", &reg));
    EXPECT_EQ(reg, 23u);
    EXPECT_TRUE(parseRegName("%i6", &reg));
    EXPECT_EQ(reg, 30u);
}

TEST(Registers, ParseAliases)
{
    unsigned reg = 99;
    EXPECT_TRUE(parseRegName("%sp", &reg));
    EXPECT_EQ(reg, kRegSp);
    EXPECT_TRUE(parseRegName("%fp", &reg));
    EXPECT_EQ(reg, kRegFp);
    EXPECT_TRUE(parseRegName("%r17", &reg));
    EXPECT_EQ(reg, 17u);
}

TEST(Registers, ParseRejectsBadNames)
{
    unsigned reg = 0;
    EXPECT_FALSE(parseRegName("%g8", &reg));
    EXPECT_FALSE(parseRegName("%x3", &reg));
    EXPECT_FALSE(parseRegName("g0", &reg));
    EXPECT_FALSE(parseRegName("%r32", &reg));
    EXPECT_FALSE(parseRegName("%", &reg));
    EXPECT_FALSE(parseRegName("%o", &reg));
}

TEST(Registers, GlobalsSharedAcrossWindows)
{
    for (unsigned cwp = 0; cwp < kNumWindows; ++cwp) {
        for (unsigned g = 0; g < 8; ++g)
            EXPECT_EQ(physRegIndex(cwp, g), g);
    }
}

/** The defining SPARC property: ins of window w == outs of w-1. */
class WindowOverlap : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(WindowOverlap, InsAliasCallerOuts)
{
    const unsigned cwp = GetParam();
    const unsigned callee = (cwp + kNumWindows - 1) % kNumWindows;
    for (unsigned k = 0; k < 8; ++k) {
        // caller's out k == callee's in k
        EXPECT_EQ(physRegIndex(cwp, 8 + k),
                  physRegIndex(callee, 24 + k));
    }
}

TEST_P(WindowOverlap, LocalsArePrivate)
{
    const unsigned cwp = GetParam();
    for (unsigned other = 0; other < kNumWindows; ++other) {
        if (other == cwp)
            continue;
        for (unsigned k = 0; k < 8; ++k) {
            EXPECT_NE(physRegIndex(cwp, 16 + k),
                      physRegIndex(other, 16 + k));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllWindows, WindowOverlap,
                         ::testing::Range(0u, kNumWindows));

TEST(RegWindowFile, G0AlwaysZero)
{
    RegWindowFile regs;
    regs.write(0, 0xdeadbeef);
    EXPECT_EQ(regs.read(0), 0u);
    regs.writePhys(0, 0xdeadbeef);
    EXPECT_EQ(regs.readPhys(0), 0u);
}

TEST(RegWindowFile, SaveRestoreRoundTrip)
{
    RegWindowFile regs;
    regs.write(16, 111);          // %l0 in window 0
    regs.write(8, 222);           // %o0 in window 0
    regs.decrementCwp();          // save
    EXPECT_EQ(regs.read(24), 222u);   // callee %i0 == caller %o0
    EXPECT_NE(regs.read(16), 111u);   // callee locals are fresh
    regs.write(24, 333);          // callee writes %i0
    regs.incrementCwp();          // restore
    EXPECT_EQ(regs.read(8), 333u);    // caller sees it in %o0
    EXPECT_EQ(regs.read(16), 111u);   // caller locals intact
}

TEST(RegWindowFile, CwpWrapsModNumWindows)
{
    RegWindowFile regs;
    EXPECT_EQ(regs.cwp(), 0u);
    regs.decrementCwp();
    EXPECT_EQ(regs.cwp(), kNumWindows - 1);
    regs.incrementCwp();
    EXPECT_EQ(regs.cwp(), 0u);
}

}  // namespace
}  // namespace flexcore
