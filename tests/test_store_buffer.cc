/** @file Store buffer tests: capacity, drain order, backpressure. */

#include "memory/store_buffer.h"

#include <gtest/gtest.h>

namespace flexcore {
namespace {

class StoreBufferTest : public ::testing::Test
{
  protected:
    StatGroup stats_{"test"};
    SdramTimings timings_;
};

TEST_F(StoreBufferTest, AcceptsUpToDepth)
{
    Bus bus(&stats_, timings_);
    StoreBuffer sb(&stats_, &bus, 4);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(sb.push(0x100 + 4 * i));
    EXPECT_TRUE(sb.full());
    EXPECT_FALSE(sb.push(0x200));
    EXPECT_EQ(stats_.lookup("store_buffer.full_stalls"), 1u);
}

TEST_F(StoreBufferTest, DrainsThroughBus)
{
    Bus bus(&stats_, timings_);
    StoreBuffer sb(&stats_, &bus, 4);
    sb.push(0x100);
    sb.push(0x104);
    for (int cycle = 0; cycle < 50 && !sb.empty(); ++cycle) {
        sb.tick();
        bus.tick();
    }
    EXPECT_TRUE(sb.empty());
    EXPECT_EQ(stats_.lookup("bus.word_writes"), 2u);
}

TEST_F(StoreBufferTest, SpaceFreesAsEntriesDrain)
{
    Bus bus(&stats_, timings_);
    StoreBuffer sb(&stats_, &bus, 2);
    EXPECT_TRUE(sb.push(0x100));
    EXPECT_TRUE(sb.push(0x104));
    EXPECT_FALSE(sb.push(0x108));
    // Drain one entry (word_write takes timings_.word_write cycles).
    for (u32 i = 0; i < timings_.word_write + 1; ++i) {
        sb.tick();
        bus.tick();
    }
    EXPECT_TRUE(sb.push(0x108));
}

TEST_F(StoreBufferTest, DrainSharesBusFairly)
{
    // A queued line refill should be serviced between store drains
    // (FCFS), not starved.
    Bus bus(&stats_, timings_);
    StoreBuffer sb(&stats_, &bus, 8);
    sb.push(0x100);
    sb.tick();   // store issues first
    bool refill_done = false;
    bus.request({BusOp::kReadLine, 0x200, [&] { refill_done = true; }});
    sb.push(0x104);
    for (u32 i = 0; i < timings_.word_write + timings_.line_read + 2;
         ++i) {
        sb.tick();
        bus.tick();
    }
    EXPECT_TRUE(refill_done);
}

TEST_F(StoreBufferTest, EmptyDefinitionIncludesInFlight)
{
    Bus bus(&stats_, timings_);
    StoreBuffer sb(&stats_, &bus, 2);
    sb.push(0x100);
    sb.tick();   // now draining
    EXPECT_FALSE(sb.empty());
    for (u32 i = 0; i < timings_.word_write; ++i)
        bus.tick();
    EXPECT_TRUE(sb.empty());
}

}  // namespace
}  // namespace flexcore
