/** @file Timing cache tests: hits, LRU, dirty eviction, geometry. */

#include "memory/cache.h"

#include <gtest/gtest.h>

namespace flexcore {
namespace {

class CacheTest : public ::testing::Test
{
  protected:
    StatGroup stats_{"test"};
};

TEST_F(CacheTest, MissThenHitAfterFill)
{
    Cache cache(&stats_, "c", {1024, 32, 2});
    EXPECT_FALSE(cache.access(0x100));
    cache.fill(0x100);
    EXPECT_TRUE(cache.access(0x100));
    EXPECT_TRUE(cache.access(0x11c));   // same 32B line
    EXPECT_FALSE(cache.access(0x120));  // next line
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST_F(CacheTest, LruEvictsLeastRecentlyUsed)
{
    // 2-way, 16 sets of 32B lines; set stride is 512B.
    Cache cache(&stats_, "c", {1024, 32, 2});
    cache.fill(0x0000);
    cache.fill(0x0200);   // same set, second way
    EXPECT_TRUE(cache.access(0x0000));   // touch way 0
    cache.fill(0x0400);   // evicts 0x0200 (LRU)
    EXPECT_TRUE(cache.contains(0x0000));
    EXPECT_FALSE(cache.contains(0x0200));
    EXPECT_TRUE(cache.contains(0x0400));
}

TEST_F(CacheTest, DirtyEvictionReportsVictim)
{
    Cache cache(&stats_, "c", {1024, 32, 2});
    cache.fill(0x0000, /*dirty=*/true);
    cache.fill(0x0200);
    const Cache::FillResult result = cache.fill(0x0400);
    EXPECT_TRUE(result.evicted_dirty);
    EXPECT_EQ(result.victim_addr, 0x0000u);
}

TEST_F(CacheTest, CleanEvictionReportsNothing)
{
    Cache cache(&stats_, "c", {1024, 32, 2});
    cache.fill(0x0000);
    cache.fill(0x0200);
    const Cache::FillResult result = cache.fill(0x0400);
    EXPECT_FALSE(result.evicted_dirty);
}

TEST_F(CacheTest, WriteAccessSetsDirty)
{
    Cache cache(&stats_, "c", {1024, 32, 2});
    cache.fill(0x0000);
    EXPECT_TRUE(cache.access(0x0000, /*set_dirty=*/true));
    cache.fill(0x0200);
    const Cache::FillResult result = cache.fill(0x0400);
    EXPECT_TRUE(result.evicted_dirty);
}

TEST_F(CacheTest, RefillOfPresentLineIsIdempotent)
{
    Cache cache(&stats_, "c", {1024, 32, 2});
    cache.fill(0x0000, true);
    const Cache::FillResult result = cache.fill(0x0000);
    EXPECT_FALSE(result.evicted_dirty);
    EXPECT_TRUE(cache.contains(0x0000));
}

TEST_F(CacheTest, InvalidateAllEmptiesCache)
{
    Cache cache(&stats_, "c", {1024, 32, 2});
    cache.fill(0x0000);
    cache.fill(0x0040);
    cache.invalidateAll();
    EXPECT_FALSE(cache.contains(0x0000));
    EXPECT_FALSE(cache.contains(0x0040));
}

TEST_F(CacheTest, ContainsDoesNotCountStats)
{
    Cache cache(&stats_, "c", {1024, 32, 2});
    cache.fill(0x0000);
    (void)cache.contains(0x0000);
    (void)cache.contains(0x9999);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
}

/** Property sweep over geometries: fills always make hits. */
class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<u32, u32, u32>>
{
  protected:
    StatGroup stats_{"test"};
};

TEST_P(CacheGeometry, FillThenHitAcrossWholeCapacity)
{
    const auto [size, line, assoc] = GetParam();
    Cache cache(&stats_, "c", {size, line, assoc});
    // Fill exactly the cache's capacity with distinct lines.
    for (u32 addr = 0; addr < size; addr += line) {
        EXPECT_FALSE(cache.access(addr));
        cache.fill(addr);
    }
    for (u32 addr = 0; addr < size; addr += line)
        EXPECT_TRUE(cache.access(addr)) << addr;
}

TEST_P(CacheGeometry, ConflictEvictionWorksPerSet)
{
    const auto [size, line, assoc] = GetParam();
    Cache cache(&stats_, "c", {size, line, assoc});
    const u32 stride = size / assoc;   // same-set stride
    // Fill assoc + 1 lines into one set; the first must be evicted.
    for (u32 way = 0; way <= assoc; ++way)
        cache.fill(way * stride);
    EXPECT_FALSE(cache.contains(0));
    EXPECT_TRUE(cache.contains(assoc * stride));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::make_tuple(1024u, 32u, 1u),
                      std::make_tuple(1024u, 32u, 2u),
                      std::make_tuple(4096u, 32u, 4u),
                      std::make_tuple(4096u, 16u, 4u),
                      std::make_tuple(32768u, 32u, 4u),
                      std::make_tuple(2048u, 64u, 2u),
                      std::make_tuple(4096u, 32u, 8u)));

using CacheDeathTest = CacheTest;

TEST_F(CacheDeathTest, RejectsBadGeometry)
{
    EXPECT_DEATH(Cache(&stats_, "c", {1000, 32, 2}), "geometry");
    EXPECT_DEATH(Cache(&stats_, "c", {1024, 24, 2}), "geometry");
    EXPECT_DEATH(Cache(&stats_, "c", {1024, 32, 0}), "geometry");
}

}  // namespace
}  // namespace flexcore
