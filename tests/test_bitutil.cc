/** @file Unit tests for common/bitutil.h. */

#include "common/bitutil.h"

#include <gtest/gtest.h>

namespace flexcore {
namespace {

TEST(BitUtil, BitsExtractsInclusiveRange)
{
    EXPECT_EQ(bits(0xdeadbeef, 31, 28), 0xdu);
    EXPECT_EQ(bits(0xdeadbeef, 7, 0), 0xefu);
    EXPECT_EQ(bits(0xdeadbeef, 15, 8), 0xbeu);
    EXPECT_EQ(bits(0xffffffff, 31, 0), 0xffffffffu);
    EXPECT_EQ(bits(0x0, 31, 0), 0u);
}

TEST(BitUtil, BitsSingleBitPositions)
{
    for (unsigned pos = 0; pos < 32; ++pos) {
        EXPECT_EQ(bits(1u << pos, pos, pos), 1u) << pos;
        EXPECT_EQ(bit(1u << pos, pos), 1u) << pos;
        EXPECT_EQ(bit(~(1u << pos), pos), 0u) << pos;
    }
}

TEST(BitUtil, InsertBitsRoundTrips)
{
    u32 word = 0;
    word = insertBits(word, 31, 30, 2);
    word = insertBits(word, 29, 25, 0x15);
    word = insertBits(word, 24, 19, 0x3f);
    EXPECT_EQ(bits(word, 31, 30), 2u);
    EXPECT_EQ(bits(word, 29, 25), 0x15u);
    EXPECT_EQ(bits(word, 24, 19), 0x3fu);
}

TEST(BitUtil, InsertBitsMasksOversizedField)
{
    const u32 word = insertBits(0, 3, 0, 0xff);
    EXPECT_EQ(word, 0xfu);
}

TEST(BitUtil, InsertBitsPreservesOtherBits)
{
    const u32 word = insertBits(0xffffffff, 15, 8, 0);
    EXPECT_EQ(word, 0xffff00ffu);
}

TEST(BitUtil, SignExtendPositive)
{
    EXPECT_EQ(signExtend(0x0fff, 13), 0x0fff);
    EXPECT_EQ(signExtend(0, 13), 0);
    EXPECT_EQ(signExtend(1, 1), -1);
}

TEST(BitUtil, SignExtendNegative)
{
    EXPECT_EQ(signExtend(0x1fff, 13), -1);
    EXPECT_EQ(signExtend(0x1000, 13), -4096);
    EXPECT_EQ(signExtend(0x3fffff, 22), -1);
    EXPECT_EQ(signExtend(0x200000, 22), -2097152);
}

TEST(BitUtil, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    for (unsigned shift = 0; shift < 63; ++shift)
        EXPECT_TRUE(isPowerOfTwo(u64{1} << shift)) << shift;
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(12));
    EXPECT_FALSE(isPowerOfTwo(0xffffffffu));
}

TEST(BitUtil, Log2Exact)
{
    EXPECT_EQ(log2Exact(1), 0u);
    EXPECT_EQ(log2Exact(2), 1u);
    EXPECT_EQ(log2Exact(32), 5u);
    EXPECT_EQ(log2Exact(4096), 12u);
}

TEST(BitUtil, AlignUp)
{
    EXPECT_EQ(alignUp(0, 4), 0u);
    EXPECT_EQ(alignUp(1, 4), 4u);
    EXPECT_EQ(alignUp(4, 4), 4u);
    EXPECT_EQ(alignUp(5, 8), 8u);
    EXPECT_EQ(alignUp(0x1001, 0x1000), 0x2000u);
}

TEST(BitUtil, Popcount32)
{
    EXPECT_EQ(popcount32(0), 0u);
    EXPECT_EQ(popcount32(0xffffffff), 32u);
    EXPECT_EQ(popcount32(0x80000001), 2u);
}

/** Property: insertBits then bits recovers the field for any widths. */
class BitFieldRoundTrip
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(BitFieldRoundTrip, Recovers)
{
    const auto [hi, lo] = GetParam();
    const unsigned width = hi - lo + 1;
    const u32 max_field =
        width >= 32 ? 0xffffffffu : (1u << width) - 1;
    for (u32 field : {u32{0}, u32{1}, max_field / 2, max_field}) {
        const u32 word = insertBits(0xa5a5a5a5u, hi, lo, field);
        EXPECT_EQ(bits(word, hi, lo), field);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BitFieldRoundTrip,
    ::testing::Values(std::make_tuple(31u, 0u), std::make_tuple(31u, 30u),
                      std::make_tuple(29u, 25u), std::make_tuple(24u, 19u),
                      std::make_tuple(18u, 14u), std::make_tuple(13u, 13u),
                      std::make_tuple(12u, 0u), std::make_tuple(4u, 0u),
                      std::make_tuple(21u, 0u), std::make_tuple(0u, 0u)));

}  // namespace
}  // namespace flexcore
