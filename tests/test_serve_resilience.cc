/**
 * @file
 * Resilience-layer tests: cooperative cancellation (CancelToken +
 * System deadline exits), defensive frame I/O (recvFrameLimited
 * against truncation, oversize, slow peers), deterministic backoff,
 * and a seeded malformed-payload fuzz of the server's protocol loop —
 * the "never crashes, always answers typed" property the chaos gate
 * then re-checks over real sockets. Runs under the ASan/UBSan and
 * TSan CI jobs.
 */

#include "serve/server.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "assembler/assembler.h"
#include "common/cancel.h"
#include "common/json.h"
#include "common/netio.h"
#include "common/rng.h"
#include "common/threadpool.h"
#include "sim/sim_request.h"
#include "sim/sim_response.h"
#include "sim/system.h"

namespace flexcore {
namespace {

using Clock = std::chrono::steady_clock;

/** Commits an instruction every cycle, forever: defeats the watchdog
 * (steady progress) and fast-forward (never idle). Only max_cycles or
 * a cancel token can end it. */
constexpr const char *kSpinSource = R"(
        .org 0x1000
_start: set 0x003ffff0, %sp
        mov 0, %g2
spin:   add %g2, 1, %g2
        ba spin
        nop
)";

constexpr const char *kTinySource = R"(
        .org 0x1000
_start: set 0x003ffff0, %sp
        mov 0, %o0
        ta 0
        nop
)";

double
elapsedMs(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

// ---- CancelToken ----

TEST(CancelToken, ManualCancelIsSticky)
{
    CancelToken token;
    EXPECT_FALSE(token.expired());
    token.cancel();
    EXPECT_TRUE(token.expired());
    EXPECT_TRUE(token.expired());
}

TEST(CancelToken, DeadlineExpires)
{
    CancelToken token;
    token.deadlineAfterMs(20);
    EXPECT_TRUE(token.hasDeadline());
    EXPECT_FALSE(token.expired());
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    EXPECT_TRUE(token.expired());
}

TEST(CancelToken, ParentChainPropagates)
{
    CancelToken parent;
    CancelToken child(&parent);
    EXPECT_FALSE(child.expired());
    parent.cancel();
    EXPECT_TRUE(child.expired());
    EXPECT_FALSE(parent.hasDeadline());
}

// ---- System deadline exits ----

TEST(SystemDeadline, NonTerminatingProgramIsCutByDeadline)
{
    SystemConfig config;
    config.max_cycles = 4'000'000'000ull;  // far beyond the deadline
    System system(config);
    system.load(Assembler::assembleOrDie(kSpinSource));
    CancelToken token;
    token.deadlineAfterMs(80);
    system.setCancel(&token);
    const auto t0 = Clock::now();
    const RunResult result = system.run();
    EXPECT_EQ(result.exit, RunResult::Exit::kDeadline);
    EXPECT_GT(result.cycles, 0u);
    // The 2x-deadline acceptance bound, with slack for a loaded CI
    // box; the poll itself fires every ~64Ki simulated cycles.
    EXPECT_LT(elapsedMs(t0), 2000.0);
}

TEST(SystemDeadline, ThreadedBurstsHonorTheDeadline)
{
    SystemConfig config;
    config.max_cycles = 4'000'000'000ull;
    config.exec_mode = ExecMode::kThreaded;
    System system(config);
    system.load(Assembler::assembleOrDie(kSpinSource));
    CancelToken token;
    token.deadlineAfterMs(80);
    system.setCancel(&token);
    const auto t0 = Clock::now();
    const RunResult result = system.run();
    EXPECT_EQ(result.exit, RunResult::Exit::kDeadline);
    EXPECT_LT(elapsedMs(t0), 2000.0);
}

TEST(SystemDeadline, CrossThreadCancelReclaimsTheRun)
{
    SystemConfig config;
    config.max_cycles = 4'000'000'000ull;
    System system(config);
    system.load(Assembler::assembleOrDie(kSpinSource));
    CancelToken token;
    system.setCancel(&token);
    RunResult result;
    std::thread worker([&] { result = system.run(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    token.cancel();
    worker.join();
    EXPECT_EQ(result.exit, RunResult::Exit::kDeadline);
}

TEST(SystemDeadline, UnexpiredTokenChangesNothing)
{
    // The zero-cost claim, functionally: an armed-but-unexpired token
    // must leave the simulated results byte-identical (the cancel
    // checks live off the committed path).
    for (const ExecMode mode :
         {ExecMode::kInterp, ExecMode::kThreaded}) {
        SystemConfig base;
        base.max_cycles = 300'000;
        base.exec_mode = mode;
        System plain(base);
        plain.load(Assembler::assembleOrDie(kSpinSource));
        const RunResult without = plain.run();

        System tokened(base);
        tokened.load(Assembler::assembleOrDie(kSpinSource));
        CancelToken token;
        token.deadlineAfterMs(600'000);  // never expires in-test
        tokened.setCancel(&token);
        const RunResult with = tokened.run();

        EXPECT_EQ(without.exit, RunResult::Exit::kMaxCycles);
        EXPECT_EQ(with.exit, without.exit);
        EXPECT_EQ(with.cycles, without.cycles);
        EXPECT_EQ(with.instructions, without.instructions);
    }
}

// ---- serveSimRequest deadline mapping ----

TEST(ServeDeadline, PreExpiredTokenFailsFastWithTypedError)
{
    SimRequest request;
    request.source(kSpinSource);
    CancelToken token;
    token.cancel();
    const SimResponse response =
        serveSimRequest(std::move(request), nullptr, nullptr, &token);
    EXPECT_EQ(response.error.code,
              ConfigError::Code::kDeadlineExceeded);
}

TEST(ServeDeadline, MidRunExpiryMapsToDeadlineExceeded)
{
    SimRequest request;
    SystemConfig config;
    config.max_cycles = 4'000'000'000ull;
    request = SimRequest(config);
    request.source(kSpinSource);
    CancelToken token;
    token.deadlineAfterMs(80);
    const SimResponse response =
        serveSimRequest(std::move(request), nullptr, nullptr, &token);
    EXPECT_EQ(response.error.code,
              ConfigError::Code::kDeadlineExceeded);
    EXPECT_EQ(response.result.exit, RunResult::Exit::kDeadline);
}

// ---- recvFrameLimited: defensive frame input ----

class FramePipe : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
    }

    void
    TearDown() override
    {
        netio::closeSocket(fds_[0]);
        netio::closeSocket(fds_[1]);
    }

    int fds_[2] = {-1, -1};
};

TEST_F(FramePipe, RoundTripsAFrame)
{
    ASSERT_TRUE(netio::sendFrame(fds_[0], "hello frames"));
    std::string payload;
    std::string error;
    EXPECT_EQ(netio::recvFrameLimited(fds_[1], &payload, 4096, 1000,
                                      1000, &error),
              netio::RecvStatus::kFrame);
    EXPECT_EQ(payload, "hello frames");
}

TEST_F(FramePipe, OversizedPrefixRejectedWithoutAllocation)
{
    // A hostile 4-byte prefix claiming ~1 GiB: the receiver must
    // reject it from the prefix alone, never sizing the buffer.
    const u8 prefix[4] = {0x00, 0x00, 0x00, 0x40};
    ASSERT_EQ(::send(fds_[0], prefix, 4, 0), 4);
    std::string payload;
    std::string error;
    EXPECT_EQ(netio::recvFrameLimited(fds_[1], &payload, 65536, 1000,
                                      1000, &error),
              netio::RecvStatus::kTooLarge);
    EXPECT_LT(payload.capacity(), 1u << 20);
    EXPECT_NE(error.find("exceeds"), std::string::npos);
}

TEST_F(FramePipe, IdleTimeoutFiresBeforeFirstByte)
{
    std::string payload;
    std::string error;
    const auto t0 = Clock::now();
    EXPECT_EQ(netio::recvFrameLimited(fds_[1], &payload, 4096, 50,
                                      1000, &error),
              netio::RecvStatus::kIdleTimeout);
    EXPECT_LT(elapsedMs(t0), 1000.0);
}

TEST_F(FramePipe, SlowLorisHitsTheFrameTimeout)
{
    // Two bytes of prefix, then silence: the frame has started, so
    // the (short) frame budget governs, not the (long) idle budget.
    const u8 partial[2] = {0x08, 0x00};
    ASSERT_EQ(::send(fds_[0], partial, 2, 0), 2);
    std::string payload;
    std::string error;
    const auto t0 = Clock::now();
    EXPECT_EQ(netio::recvFrameLimited(fds_[1], &payload, 4096, 5000,
                                      100, &error),
              netio::RecvStatus::kFrameTimeout);
    EXPECT_LT(elapsedMs(t0), 3000.0);
}

TEST_F(FramePipe, CleanEofBeforeAnyByte)
{
    netio::closeSocket(fds_[0]);
    fds_[0] = -1;
    std::string payload;
    std::string error;
    EXPECT_EQ(netio::recvFrameLimited(fds_[1], &payload, 4096, 1000,
                                      1000, &error),
              netio::RecvStatus::kEof);
    EXPECT_TRUE(error.empty());
}

TEST_F(FramePipe, MidFrameHangupIsAnError)
{
    const u8 bytes[7] = {0x0a, 0x00, 0x00, 0x00, 'a', 'b', 'c'};
    ASSERT_EQ(::send(fds_[0], bytes, 7, 0), 7);
    netio::closeSocket(fds_[0]);
    fds_[0] = -1;
    std::string payload;
    std::string error;
    EXPECT_EQ(netio::recvFrameLimited(fds_[1], &payload, 4096, 1000,
                                      1000, &error),
              netio::RecvStatus::kError);
    EXPECT_FALSE(error.empty());
}

TEST_F(FramePipe, SeededRandomByteStreamsNeverCrashTheReader)
{
    // Malformed-frame fuzz at the I/O layer: whatever bytes arrive,
    // recvFrameLimited returns a status — no crash, no unbounded
    // allocation. (ASan/UBSan/TSan jobs run this too.)
    Rng rng(0x5eedf00dULL);
    for (int round = 0; round < 50; ++round) {
        const size_t count = 1 + rng.below(64);
        std::string bytes(count, '\0');
        for (size_t i = 0; i < count; ++i)
            bytes[i] = static_cast<char>(rng.below(256));
        ASSERT_EQ(::send(fds_[0], bytes.data(), bytes.size(), 0),
                  static_cast<ssize_t>(bytes.size()));
        std::string payload;
        std::string error;
        const netio::RecvStatus status = netio::recvFrameLimited(
            fds_[1], &payload, 4096, 20, 20, &error);
        EXPECT_LT(payload.capacity(), 1u << 20);
        if (status == netio::RecvStatus::kTooLarge ||
            status == netio::RecvStatus::kError) {
            // Stream desynchronized: drain and start a fresh pipe,
            // like the server dropping the connection.
            TearDown();
            SetUp();
        }
    }
}

// ---- backoff determinism ----

TEST(Backoff, DelaysAreDeterministicPerSeed)
{
    Rng a(42), b(42), c(43);
    bool any_differs = false;
    for (u32 attempt = 0; attempt < 12; ++attempt) {
        const u32 da = netio::backoffDelayMs(5, 500, attempt, &a);
        const u32 db = netio::backoffDelayMs(5, 500, attempt, &b);
        const u32 dc = netio::backoffDelayMs(5, 500, attempt, &c);
        EXPECT_EQ(da, db);
        any_differs = any_differs || da != dc;
    }
    EXPECT_TRUE(any_differs) << "different seeds should decorrelate";
}

TEST(Backoff, DelaysRampAndStayWithinTheJitterBand)
{
    Rng rng(7);
    for (u32 attempt = 0; attempt < 20; ++attempt) {
        u64 cap = u64{5} << (attempt < 16 ? attempt : 16);
        if (cap > 500)
            cap = 500;
        const u32 delay = netio::backoffDelayMs(5, 500, attempt, &rng);
        EXPECT_GE(delay, cap / 2) << "attempt " << attempt;
        EXPECT_LE(delay, cap) << "attempt " << attempt;
    }
}

// ---- Server protocol loop: ops + seeded malformed-payload fuzz ----

class ServerLoop : public ::testing::Test
{
  protected:
    ServerLoop() : pool_(1) { limits_.quiet = true; }

    serve::ServeLimits limits_;
    ThreadPool pool_;
};

TEST_F(ServerLoop, HealthReportsCountersWithFixedShape)
{
    ProgramCache cache;
    serve::Server server(&pool_, &cache, limits_);
    const serve::Server::Reply reply =
        server.handlePayload("{\"op\": \"health\"}");
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(reply.frame, &doc, &error)) << reply.frame;
    EXPECT_TRUE(doc.find("ok")->boolean);
    EXPECT_EQ(doc.find("pending")->uint, 0u);
    EXPECT_EQ(doc.find("running")->uint, 0u);
    EXPECT_NE(doc.find("uptime_ms"), nullptr);
    EXPECT_NE(doc.find("cache"), nullptr);
    EXPECT_FALSE(doc.find("draining")->boolean);
    // Capacity facts for load balancers: this server runs one worker,
    // and the host concurrency is whatever the machine reports.
    ASSERT_NE(doc.find("workers"), nullptr);
    EXPECT_EQ(doc.find("workers")->uint, 1u);
    ASSERT_NE(doc.find("hardware_concurrency"), nullptr);
    EXPECT_EQ(doc.find("hardware_concurrency")->uint,
              std::thread::hardware_concurrency());
}

TEST_F(ServerLoop, SimRequestRunsAndShutdownShedsNewSims)
{
    serve::Server server(&pool_, nullptr, limits_);
    const std::string envelope =
        "{\"op\": \"sim\", \"request\": {\"v\": 1, "
        "\"input\": {\"source\": " +
        [] {
            std::string out;
            out += '"';
            for (const char *p = kTinySource; *p; ++p) {
                if (*p == '\n')
                    out += "\\n";
                else if (*p == '"')
                    out += "\\\"";
                else
                    out += *p;
            }
            out += '"';
            return out;
        }() +
        "}}}";
    serve::Server::Reply reply = server.handlePayload(envelope);
    SimResponse response;
    std::string error;
    ASSERT_TRUE(simResponseFromJson(reply.frame, &response, &error));
    EXPECT_FALSE(response.error) << response.error.message;
    EXPECT_EQ(response.result.exit, RunResult::Exit::kExited);
    EXPECT_EQ(server.sims(), 1u);

    server.beginShutdown();
    reply = server.handlePayload(envelope);
    ASSERT_TRUE(simResponseFromJson(reply.frame, &response, &error));
    EXPECT_EQ(response.error.code, ConfigError::Code::kShuttingDown);
    EXPECT_EQ(server.shed(), 1u);
}

TEST_F(ServerLoop, SeededFuzzAlwaysAnswersValidTypedJson)
{
    serve::Server server(&pool_, nullptr, limits_);
    Rng rng(0xc0ffeeULL);
    const std::string valid =
        "{\"op\": \"sim\", \"request\": {\"v\": 1}}";
    for (int round = 0; round < 300; ++round) {
        std::string payload;
        if (round % 3 == 0) {
            // Pure random bytes.
            const size_t count = rng.below(200);
            payload.resize(count);
            for (size_t i = 0; i < count; ++i)
                payload[i] = static_cast<char>(rng.below(256));
        } else {
            // A valid envelope with random bytes flipped.
            payload = valid;
            const u64 flips = 1 + rng.below(6);
            for (u64 i = 0; i < flips; ++i)
                payload[rng.below(payload.size())] =
                    static_cast<char>(rng.below(256));
        }
        const serve::Server::Reply reply =
            server.handlePayload(payload);
        ASSERT_FALSE(reply.frame.empty());
        JsonValue doc;
        std::string error;
        ASSERT_TRUE(parseJson(reply.frame, &doc, &error))
            << "round " << round << ": " << reply.frame;
        ASSERT_NE(doc.find("ok"), nullptr);
    }
    // The loop above never submitted a successful sim.
    EXPECT_EQ(server.sims(), 0u);
}

}  // namespace
}  // namespace flexcore
