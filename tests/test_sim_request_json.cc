/**
 * @file
 * Wire-schema tests for SimRequest/SimResponse (docs/serve.md):
 *
 *  - the canonical round trip: fromJson(toJson(r)) re-renders to the
 *    same bytes and *runs* to byte-identical output, fuzzed across
 *    every serializable field;
 *  - strict rejection: each class of malformed document maps to its
 *    typed kBad* ConfigError, never a fatal;
 *  - the serve executor + ProgramCache: hit/miss accounting, shared
 *    program images, typed errors for bad source/config, FXTR trace
 *    sizing, and the SimResponse JSON round trip.
 */

#include "sim/sim_request.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "common/json.h"
#include "faults/fault_plan.h"
#include "sim/sim_response.h"

namespace flexcore {
namespace {

const char *const kTinyProgram =
    "        .org 0x1000\n"
    "_start: set 0x003ffff0, %sp\n"
    "        mov 72, %o0\n"
    "        ta 1\n"
    "        mov 40, %o0\n"
    "        add %o0, 2, %o0\n"
    "        ta 0\n"
    "        nop\n";

ConfigError::Code
rejectionCode(const std::string &text)
{
    SimRequest request;
    ConfigError error;
    EXPECT_FALSE(SimRequest::fromJson(text, &request, &error));
    EXPECT_FALSE(error.message.empty());
    return error.code;
}

// ---- Round trip ----

TEST(SimRequestJson, DefaultSourceRequestRoundTrips)
{
    SimRequest request;
    request.source(kTinyProgram);
    const std::string wire = request.toJson();

    SimRequest decoded;
    ConfigError error;
    ASSERT_TRUE(SimRequest::fromJson(wire, &decoded, &error))
        << error.message;
    EXPECT_FALSE(error);
    EXPECT_EQ(decoded.toJson(), wire);
}

TEST(SimRequestJson, EveryFieldRoundTripsExactly)
{
    SystemConfig config;
    config.monitor = MonitorKind::kDift;
    config.mode = ImplMode::kFlexFabric;
    config.exec_mode = ExecMode::kInterp;
    config.flex_period = 3;
    config.dift_tag_bits = 4;
    config.iface.fifo_depth = 48;
    config.fabric.meta_cache.size_bytes = 8192;
    config.core.icache.size_bytes = 16384;
    config.core.dcache.size_bytes = 32768;
    config.precise_exceptions = true;
    config.histograms = true;
    config.fast_forward = false;
    config.max_cycles = 123'456'789;
    config.watchdog_commits = 70'000;
    config.sample_window = 100;
    config.sample_period = 1000;
    config.fault_rate = 1e-7;
    config.fault_seed = 0xdeadbeef;
    FaultSpec spec;
    std::string spec_error;
    ASSERT_TRUE(parseFaultSpec("reg@i1200:t17:b3", &spec, &spec_error))
        << spec_error;
    config.faults.specs.push_back(spec);
    ASSERT_TRUE(
        parseFaultSpec("ffifo@c900:t2:b12:fsrcv1", &spec, &spec_error))
        << spec_error;
    config.faults.specs.push_back(spec);

    SimRequest request(config);
    request.workloadByName("sha", WorkloadScale::kFull)
        .verify(false)
        .stats({"core.cycles", "core.commits"})
        .statsJson()
        .statsDump()
        .profileJson(7)
        .traceFxtr();

    const std::string wire = request.toJson();
    SimRequest decoded;
    ConfigError error;
    ASSERT_TRUE(SimRequest::fromJson(wire, &decoded, &error))
        << error.message;
    EXPECT_EQ(decoded.toJson(), wire);

    EXPECT_EQ(decoded.workloadName(), "sha");
    EXPECT_EQ(decoded.workloadScale(), WorkloadScale::kFull);
    EXPECT_FALSE(decoded.verifyRequested());
    EXPECT_EQ(decoded.statPaths(),
              (std::vector<std::string>{"core.cycles", "core.commits"}));
    EXPECT_TRUE(decoded.statsJsonRequested());
    EXPECT_TRUE(decoded.statsDumpRequested());
    EXPECT_EQ(decoded.profileTop(), 7u);
    EXPECT_TRUE(decoded.traceFxtrRequested());
    EXPECT_EQ(decoded.config().monitor, MonitorKind::kDift);
    EXPECT_EQ(decoded.config().faults.specs.size(), 2u);
    EXPECT_EQ(decoded.config().fault_rate, 1e-7);
}

/**
 * Fuzz: random draws over the whole serializable field space must
 * re-render to identical bytes after a decode. Structural round-trip
 * only — many drawn configs would fail finalize(), which is fine: the
 * wire layer is strict about *schema*, finalize() about *semantics*.
 */
TEST(SimRequestJson, FuzzedRequestsReRenderIdentically)
{
    std::mt19937_64 rng(0xf1e2c0de);
    const MonitorKind monitors[] = {
        MonitorKind::kNone, MonitorKind::kUmc,      MonitorKind::kDift,
        MonitorKind::kBc,   MonitorKind::kSec,      MonitorKind::kProf,
        MonitorKind::kMemProt, MonitorKind::kWatch,
        MonitorKind::kRefCount};
    const ImplMode modes[] = {ImplMode::kBaseline, ImplMode::kAsic,
                              ImplMode::kFlexFabric,
                              ImplMode::kSoftware};
    const char *const workloads[] = {"sha", "gmac", "qsort",
                                     "bitcount"};

    for (int i = 0; i < 200; ++i) {
        SystemConfig config;
        config.monitor = monitors[rng() % std::size(monitors)];
        config.mode = modes[rng() % std::size(modes)];
        config.exec_mode = (rng() & 1) ? ExecMode::kThreaded
                                       : ExecMode::kInterp;
        config.flex_period = static_cast<u32>(rng() % 9);
        config.dift_tag_bits = (rng() & 1) ? 4 : 1;
        config.iface.fifo_depth = static_cast<u32>(1 + rng() % 128);
        config.fabric.meta_cache.size_bytes =
            static_cast<u32>(1u << (5 + rng() % 10));
        config.precise_exceptions = rng() & 1;
        config.histograms = rng() & 1;
        config.fast_forward = rng() & 1;
        config.max_cycles = rng() % 1'000'000'000;
        config.watchdog_commits = rng() % 100'000;
        if (rng() & 1) {
            config.sample_window = 1 + rng() % 1000;
            config.sample_period =
                config.sample_window + rng() % 10'000;
        }
        config.fault_rate = (rng() & 1) ? 0.0 : 1.0 / double(1 + rng() % 100);
        config.fault_seed = rng();
        if (rng() % 4 == 0) {
            FaultSpec spec;
            std::string why;
            ASSERT_TRUE(parseFaultSpec("mem@c5000:t0x2040:b5", &spec,
                                       &why));
            spec.when = rng() % 100'000;
            spec.bit = static_cast<u32>(rng() % 32);
            config.faults.specs.push_back(spec);
        }

        SimRequest request(config);
        if (rng() & 1) {
            request.workloadByName(workloads[rng() % std::size(workloads)],
                                   (rng() & 1) ? WorkloadScale::kFull
                                               : WorkloadScale::kTest);
            request.verify(rng() & 1);
        } else {
            request.source(std::string(kTinyProgram) + "! nonce " +
                           std::to_string(rng()) + "\n");
        }
        if (rng() & 1)
            request.stats({"core.cycles"});
        request.statsJson(rng() & 1);
        request.statsDump(rng() & 1);
        if (rng() & 1)
            request.profileJson(static_cast<u32>(1 + rng() % 50));
        request.traceFxtr(rng() & 1);

        const std::string wire = request.toJson();
        SimRequest decoded;
        ConfigError error;
        ASSERT_TRUE(SimRequest::fromJson(wire, &decoded, &error))
            << "iteration " << i << ": " << error.message << "\n"
            << wire;
        EXPECT_EQ(decoded.toJson(), wire) << "iteration " << i;
    }
}

/** The decoded request must *run* byte-identically, not just re-render. */
TEST(SimRequestJson, DecodedRequestRunsByteIdentically)
{
    SimRequest request;
    request.source(kTinyProgram).statsJson().profileJson(5).stats(
        {"core.cycles", "core.commits"});
    request.mutableConfig().histograms = true;

    SimRequest decoded;
    ConfigError error;
    ASSERT_TRUE(
        SimRequest::fromJson(request.toJson(), &decoded, &error))
        << error.message;

    SimOutcome a = request.run();
    SimOutcome b = decoded.run();
    EXPECT_EQ(a.result.exit, b.result.exit);
    EXPECT_EQ(a.result.exit_code, b.result.exit_code);
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(a.result.instructions, b.result.instructions);
    EXPECT_EQ(a.result.console, b.result.console);
    EXPECT_EQ(a.stats, b.stats);
    ASSERT_FALSE(a.stats_json.empty());
    EXPECT_EQ(a.stats_json, b.stats_json);
    ASSERT_FALSE(a.profile_json.empty());
    EXPECT_EQ(a.profile_json, b.profile_json);
}

TEST(SimRequestJson, DecodedWorkloadRequestVerifies)
{
    SimRequest request;
    request.workloadByName("sha").statsJson();
    SimRequest decoded;
    ConfigError error;
    ASSERT_TRUE(
        SimRequest::fromJson(request.toJson(), &decoded, &error))
        << error.message;
    EXPECT_TRUE(decoded.verifyRequested());

    // A verified run: a golden-output mismatch would be fatal here.
    SimOutcome a = request.run();
    SimOutcome b = decoded.run();
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(a.stats_json, b.stats_json);
}

// ---- Typed rejection ----

TEST(SimRequestJson, RejectsMalformedDocumentsWithTypedErrors)
{
    using Code = ConfigError::Code;

    // Parse / structure.
    EXPECT_EQ(rejectionCode("not json"), Code::kBadRequest);
    EXPECT_EQ(rejectionCode("[1, 2]"), Code::kBadRequest);
    EXPECT_EQ(rejectionCode(
                  R"({"v": 1, "input": {"source": "x"}, "bogus": 1})"),
              Code::kBadRequest);

    // Version.
    EXPECT_EQ(rejectionCode(R"({"input": {"source": "x"}})"),
              Code::kBadVersion);
    EXPECT_EQ(rejectionCode(R"({"v": "1", "input": {"source": "x"}})"),
              Code::kBadVersion);
    EXPECT_EQ(rejectionCode(R"({"v": 999, "input": {"source": "x"}})"),
              Code::kBadVersion);

    // Config enums get their own codes...
    EXPECT_EQ(rejectionCode(R"({"v": 1, "config": {"monitor": "wat"},
                                "input": {"source": "x"}})"),
              Code::kBadMonitor);
    EXPECT_EQ(rejectionCode(R"({"v": 1, "config": {"mode": "wat"},
                                "input": {"source": "x"}})"),
              Code::kBadImplMode);
    EXPECT_EQ(rejectionCode(R"({"v": 1, "config": {"exec_mode": "wat"},
                                "input": {"source": "x"}})"),
              Code::kBadExecMode);
    // ...while unknown keys and type violations are kBadRequest.
    EXPECT_EQ(rejectionCode(R"({"v": 1, "config": {"warp_factor": 9},
                                "input": {"source": "x"}})"),
              Code::kBadRequest);
    EXPECT_EQ(rejectionCode(R"({"v": 1, "config": {"max_cycles": -4},
                                "input": {"source": "x"}})"),
              Code::kBadRequest);
    EXPECT_EQ(rejectionCode(
                  R"({"v": 1, "config": {"fifo_depth": 4294967296},
                                "input": {"source": "x"}})"),
              Code::kBadRequest);

    // Faults.
    EXPECT_EQ(rejectionCode(
                  R"({"v": 1, "config": {"faults": [{"when": 5}]},
                                "input": {"source": "x"}})"),
              Code::kBadRequest);
    EXPECT_EQ(
        rejectionCode(
            R"({"v": 1,
                "config": {"faults": [{"kind": "wat", "when": 5}]},
                "input": {"source": "x"}})"),
        Code::kBadRequest);

    // Input.
    EXPECT_EQ(rejectionCode(R"({"v": 1})"), Code::kBadRequest);
    EXPECT_EQ(rejectionCode(R"({"v": 1, "input": {}})"),
              Code::kBadRequest);
    EXPECT_EQ(rejectionCode(
                  R"({"v": 1, "input": {"workload": "sha",
                                        "source": "x"}})"),
              Code::kBadRequest);
    EXPECT_EQ(rejectionCode(R"({"v": 1, "input": {"scale": "test"}})"),
              Code::kBadRequest);
    EXPECT_EQ(rejectionCode(R"({"v": 1, "input": {"workload": "wat"}})"),
              Code::kBadWorkload);
    EXPECT_EQ(rejectionCode(
                  R"({"v": 1, "input": {"workload": "sha",
                                        "scale": "huge"}})"),
              Code::kBadWorkload);

    // Verify needs a golden model to verify against.
    EXPECT_EQ(rejectionCode(R"({"v": 1, "input": {"source": "x"},
                                "verify": true})"),
              Code::kBadRequest);

    // Output.
    EXPECT_EQ(rejectionCode(R"({"v": 1, "input": {"source": "x"},
                                "output": {"wat": true}})"),
              Code::kBadRequest);
    EXPECT_EQ(rejectionCode(R"({"v": 1, "input": {"source": "x"},
                                "output": {"stats": "core.cycles"}})"),
              Code::kBadRequest);
}

TEST(SimRequestJson, FromJsonOverParsedSubtreeMatchesTextPath)
{
    SimRequest request;
    request.workloadByName("sha").statsJson();
    const std::string wire = request.toJson();
    const std::string envelope =
        "{\"op\": \"sim\", \"request\": " + wire + "}";

    JsonValue doc;
    std::string parse_error;
    ASSERT_TRUE(parseJson(envelope, &doc, &parse_error)) << parse_error;
    const JsonValue *subtree = doc.find("request");
    ASSERT_NE(subtree, nullptr);

    SimRequest decoded;
    ConfigError error;
    ASSERT_TRUE(SimRequest::fromJson(*subtree, &decoded, &error))
        << error.message;
    EXPECT_EQ(decoded.toJson(), wire);
}

// ---- serveSimRequest + ProgramCache ----

TEST(SimResponseServe, CacheHitsShareOneProgramImage)
{
    ProgramCache cache;
    SimRequest first;
    first.source(kTinyProgram).statsJson();
    SimResponse a = serveSimRequest(first, &cache, nullptr);
    ASSERT_FALSE(a.error) << a.error.message;
    EXPECT_FALSE(a.cache_hit);

    SimRequest second;
    second.source(kTinyProgram).statsJson();
    SimResponse b = serveSimRequest(second, &cache, nullptr);
    ASSERT_FALSE(b.error) << b.error.message;
    EXPECT_TRUE(b.cache_hit);
    EXPECT_EQ(a.source_hash, b.source_hash);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.size(), 1u);

    // The cache-hit run is observationally identical to the cold one.
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(a.result.console, b.result.console);
    EXPECT_EQ(a.stats_json, b.stats_json);
}

TEST(SimResponseServe, BadSourceAndBadConfigAreTypedErrors)
{
    SimRequest bad_source;
    bad_source.source("definitely not sparc\n");
    SimResponse a = serveSimRequest(bad_source, nullptr, nullptr);
    EXPECT_EQ(a.error.code, ConfigError::Code::kBadSource);

    SimRequest bad_config;
    bad_config.source(kTinyProgram);
    bad_config.mutableConfig().monitor = MonitorKind::kDift;
    bad_config.mutableConfig().mode = ImplMode::kFlexFabric;
    bad_config.mutableConfig().dift_tag_bits = 3;
    SimResponse b = serveSimRequest(bad_config, nullptr, nullptr);
    EXPECT_EQ(b.error.code, ConfigError::Code::kBadDiftTagBits);
}

TEST(SimResponseServe, TraceBytesMatchOutOfBandFrame)
{
    SimRequest request;
    request.source(kTinyProgram).traceFxtr();
    std::string trace;
    SimResponse response = serveSimRequest(request, nullptr, &trace);
    ASSERT_FALSE(response.error) << response.error.message;
    EXPECT_FALSE(trace.empty());
    EXPECT_EQ(response.trace_bytes, trace.size());
}

TEST(SimResponseServe, ResponseJsonRoundTrips)
{
    SimRequest request;
    request.source(kTinyProgram)
        .stats({"core.cycles"})
        .statsJson()
        .profileJson(3);
    SimResponse sent = serveSimRequest(request, nullptr, nullptr);
    ASSERT_FALSE(sent.error) << sent.error.message;

    SimResponse received;
    std::string why;
    ASSERT_TRUE(
        simResponseFromJson(simResponseJson(sent), &received, &why))
        << why;
    EXPECT_FALSE(received.error);
    EXPECT_EQ(received.cache_hit, sent.cache_hit);
    EXPECT_EQ(received.source_hash, sent.source_hash);
    EXPECT_EQ(received.result.exit, sent.result.exit);
    EXPECT_EQ(received.result.exit_code, sent.result.exit_code);
    EXPECT_EQ(received.result.cycles, sent.result.cycles);
    EXPECT_EQ(received.result.instructions, sent.result.instructions);
    EXPECT_EQ(received.result.console, sent.result.console);
    EXPECT_EQ(received.stats, sent.stats);
    EXPECT_EQ(received.stats_json, sent.stats_json);
    EXPECT_EQ(received.profile_json, sent.profile_json);
    EXPECT_EQ(received.trace_bytes, sent.trace_bytes);

    // Error responses survive the trip with their typed code.
    SimResponse error_sent;
    error_sent.error = makeConfigError(ConfigError::Code::kBadMonitor,
                                       "unknown monitor \"wat\"");
    SimResponse error_received;
    ASSERT_TRUE(simResponseFromJson(simResponseJson(error_sent),
                                    &error_received, &why))
        << why;
    EXPECT_EQ(error_received.error.code,
              ConfigError::Code::kBadMonitor);
    EXPECT_EQ(error_received.error.message, "unknown monitor \"wat\"");
}

}  // namespace
}  // namespace flexcore
