/**
 * @file
 * Streaming binary trace (common/trace_stream.h). Three load-bearing
 * claims: (1) the FXTR byte stream round-trips — every record written
 * comes back with the same fields, in order, behind a validated header
 * and summary footer; (2) the Chrome export replayed from a stream is
 * byte-identical to what the buffering TraceBuffer would have written
 * for the same run (the `flexcore-trace export --chrome` contract, also
 * cmp-gated in CI); (3) the stream is legal and identical under
 * threaded dispatch, and legal under sampled timing where window
 * boundaries become explicit records.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "common/trace_event.h"
#include "common/trace_stream.h"
#include "faults/fault_plan.h"
#include "sim/sim_request.h"
#include "workloads/workload.h"

namespace flexcore {
namespace {

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "/" + name;
}

std::string
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

SystemConfig
fabricConfig(MonitorKind monitor, ExecMode exec = ExecMode::kInterp)
{
    SystemConfig config;
    config.monitor = monitor;
    config.mode = monitor == MonitorKind::kNone ? ImplMode::kBaseline
                                                : ImplMode::kFlexFabric;
    config.exec_mode = exec;
    return config;
}

TEST(TraceStream, WriteReadRoundTripsEveryRecordKind)
{
    const std::string path = tempPath("roundtrip.fxtr");
    {
        TraceStreamWriter writer(path);
        writer.counter("ffifo_occupancy", 10, 3);
        writer.complete("dmiss_wait", "core", 1, 20, 50);
        writer.instant("monitor_trap", "core", 1, 60);
        writer.commit(61, 0x1000, 0x9de3bfa0u);
        writer.faultMark(70, 2, 0x2040, 5);
        writer.window(80, 1234, true);
        writer.window(90, 2000, false);
        writer.finish();
    }

    TraceReader reader(path);
    ASSERT_TRUE(reader.valid()) << reader.error();
    TraceRecord r;

    ASSERT_TRUE(reader.next(&r));
    EXPECT_EQ(r.type, TraceRecordType::kCounter);
    EXPECT_STREQ(r.name, "ffifo_occupancy");
    EXPECT_EQ(r.ts, 10u);
    EXPECT_EQ(r.a, 3u);

    ASSERT_TRUE(reader.next(&r));
    EXPECT_EQ(r.type, TraceRecordType::kComplete);
    EXPECT_STREQ(r.name, "dmiss_wait");
    EXPECT_STREQ(r.cat, "core");
    EXPECT_EQ(r.tid, 1u);
    EXPECT_EQ(r.ts, 20u);
    EXPECT_EQ(r.a, 30u);   // duration, clamped end - start

    ASSERT_TRUE(reader.next(&r));
    EXPECT_EQ(r.type, TraceRecordType::kInstant);
    EXPECT_STREQ(r.name, "monitor_trap");
    EXPECT_EQ(r.ts, 60u);

    ASSERT_TRUE(reader.next(&r));
    EXPECT_EQ(r.type, TraceRecordType::kCommit);
    EXPECT_EQ(r.ts, 61u);
    EXPECT_EQ(r.a, 0x1000u);
    EXPECT_EQ(r.b, 0x9de3bfa0u);

    ASSERT_TRUE(reader.next(&r));
    EXPECT_EQ(r.type, TraceRecordType::kFaultMark);
    EXPECT_EQ(r.ts, 70u);
    EXPECT_EQ(r.c, 2u);        // fault kind
    EXPECT_EQ(r.a, 0x2040u);   // target
    EXPECT_EQ(r.b, 5u);        // bit

    ASSERT_TRUE(reader.next(&r));
    EXPECT_EQ(r.type, TraceRecordType::kWindow);
    EXPECT_EQ(r.ts, 80u);
    EXPECT_EQ(r.a, 1234u);
    EXPECT_EQ(r.b, 1u);

    ASSERT_TRUE(reader.next(&r));
    EXPECT_EQ(r.type, TraceRecordType::kWindow);
    EXPECT_EQ(r.b, 0u);

    ASSERT_TRUE(reader.next(&r));
    EXPECT_EQ(r.type, TraceRecordType::kSummary);
    EXPECT_EQ(r.b, 1u);   // one commit

    EXPECT_FALSE(reader.next(&r));
    EXPECT_TRUE(reader.valid());   // clean EOF, not a decode error
    std::remove(path.c_str());
}

TEST(TraceStream, RejectsBadMagic)
{
    const std::string path = tempPath("badmagic.fxtr");
    {
        std::ofstream out(path, std::ios::binary);
        const char header[8] = {'N', 'O', 'P', 'E', 1, 0, 0, 0};
        out.write(header, sizeof(header));
    }
    TraceReader reader(path);
    EXPECT_FALSE(reader.valid());
    EXPECT_NE(reader.error().find("magic"), std::string::npos);
    std::remove(path.c_str());
}

/** The Chrome-export contract on the interp matrix: byte identity. */
class ChromeExport : public ::testing::TestWithParam<MonitorKind>
{
};

TEST_P(ChromeExport, MatchesBufferedTraceByteForByte)
{
    const MonitorKind monitor = GetParam();
    const Workload workload = makeSha(WorkloadScale::kTest);
    const std::string path = tempPath("chrome.fxtr");

    TraceBuffer buffered;
    SimRequest(fabricConfig(monitor))
        .workload(workload)
        .trace(&buffered)
        .run();

    {
        TraceStreamWriter writer(path);
        SimRequest(fabricConfig(monitor))
            .workload(workload)
            .traceStream(&writer)
            .run();
        writer.finish();
    }

    std::string exported, error;
    ASSERT_TRUE(renderChromeJson(path, &exported, &error)) << error;
    EXPECT_EQ(exported, buffered.json());
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(InterpMatrix, ChromeExport,
                         ::testing::Values(MonitorKind::kNone,
                                           MonitorKind::kUmc,
                                           MonitorKind::kDift,
                                           MonitorKind::kSec),
                         [](const auto &info) {
                             return info.param == MonitorKind::kNone
                                        ? std::string("baseline")
                                        : std::string(monitorKindName(
                                              info.param));
                         });

/**
 * PR 2 forbade tracing under threaded dispatch; the stream lifts that.
 * A threaded run with a sink attached falls back to the per-cycle loop
 * and must produce the *same file bytes* as the interp run.
 */
TEST(TraceStream, ThreadedStreamIsByteIdenticalToInterp)
{
    const Workload workload = makeSha(WorkloadScale::kTest);
    auto streamBytes = [&](ExecMode exec) {
        const std::string path = tempPath(
            std::string("exec_") +
            std::string(execModeName(exec)) + ".fxtr");
        {
            TraceStreamWriter writer(path);
            SimRequest(fabricConfig(MonitorKind::kDift, exec))
                .workload(workload)
                .traceStream(&writer)
                .run();
            writer.finish();
        }
        std::string bytes = readFileBytes(path);
        std::remove(path.c_str());
        return bytes;
    };
    const std::string interp = streamBytes(ExecMode::kInterp);
    const std::string threaded = streamBytes(ExecMode::kThreaded);
    EXPECT_FALSE(interp.empty());
    EXPECT_EQ(interp, threaded);
}

/** Threaded + buffered trace_events now finalizes and traces too. */
TEST(TraceStream, ThreadedBufferedTraceMatchesInterp)
{
    const Workload workload = makeSha(WorkloadScale::kTest);
    auto traceJson = [&](ExecMode exec) {
        TraceBuffer sink;
        SimRequest(fabricConfig(MonitorKind::kUmc, exec))
            .workload(workload)
            .trace(&sink)
            .run();
        return sink.json();
    };
    EXPECT_EQ(traceJson(ExecMode::kInterp),
              traceJson(ExecMode::kThreaded));
}

/**
 * Sampled timing accepts the stream writer (the buffering sink is
 * still rejected there) and brackets every warmed stretch in window
 * records: detailed windows open with detailed=1, warm stretches with
 * detailed=0, and commits keep flowing during warming.
 */
TEST(TraceStream, SampledRunRecordsWindowBoundaries)
{
    const Workload workload = makeSha(WorkloadScale::kTest);
    const std::string path = tempPath("sampled.fxtr");
    SystemConfig config = fabricConfig(MonitorKind::kDift);
    config.sample_window = 500;
    config.sample_period = 2'000;
    {
        TraceStreamWriter writer(path);
        const SimOutcome out = SimRequest(config)
                                   .workload(workload)
                                   .traceStream(&writer)
                                   .run();
        ASSERT_TRUE(out.result.sampled);
        writer.finish();
    }

    TraceReader reader(path);
    ASSERT_TRUE(reader.valid()) << reader.error();
    u64 detailed = 0;
    u64 warm = 0;
    u64 commits = 0;
    TraceRecord r;
    while (reader.next(&r)) {
        if (r.type == TraceRecordType::kWindow)
            ++(r.b ? detailed : warm);
        if (r.type == TraceRecordType::kCommit)
            ++commits;
    }
    EXPECT_TRUE(reader.valid()) << reader.error();
    EXPECT_GT(detailed, 0u);
    EXPECT_GT(warm, 0u);
    EXPECT_GT(commits, 0u);
    std::remove(path.c_str());
}

TEST(TraceStream, DiffReportsSelfIdentityAndFirstDivergence)
{
    const std::string a = tempPath("diff_a.fxtr");
    const std::string b = tempPath("diff_b.fxtr");
    {
        TraceStreamWriter wa(a);
        wa.commit(1, 0x1000, 1);
        wa.commit(2, 0x1004, 2);
        wa.finish();
        TraceStreamWriter wb(b);
        wb.commit(1, 0x1000, 1);
        wb.commit(2, 0x1008, 2);   // diverges here
        wb.finish();
    }

    const TraceDiff self = diffStreams(a, a);
    EXPECT_TRUE(self.identical);

    const TraceDiff cross = diffStreams(a, b);
    EXPECT_FALSE(cross.identical);
    EXPECT_EQ(cross.index, 1u);
    EXPECT_NE(cross.a_desc.find("0x00001004"), std::string::npos)
        << cross.a_desc;
    EXPECT_NE(cross.b_desc.find("0x00001008"), std::string::npos)
        << cross.b_desc;
    std::remove(a.c_str());
    std::remove(b.c_str());
}

/** Fault injections leave kFaultMark records carrying the spec. */
TEST(TraceStream, FaultInjectionLeavesMarkRecords)
{
    const Workload workload = makeSha(WorkloadScale::kTest);
    const std::string path = tempPath("fault.fxtr");
    SystemConfig config = fabricConfig(MonitorKind::kSec);
    std::string error;
    ASSERT_TRUE(parseFaultSpec("reg@c500:t130:b3",
                               &config.faults.specs.emplace_back(),
                               &error))
        << error;
    {
        TraceStreamWriter writer(path);
        SimRequest(config)
            .workload(workload)
            .verify(false)
            .traceStream(&writer)
            .run();
        writer.finish();
    }

    TraceReader reader(path);
    ASSERT_TRUE(reader.valid()) << reader.error();
    std::vector<TraceRecord> marks;
    TraceRecord r;
    while (reader.next(&r)) {
        if (r.type == TraceRecordType::kFaultMark)
            marks.push_back(r);
    }
    ASSERT_EQ(marks.size(), 1u);
    EXPECT_EQ(marks[0].ts, 500u);   // the exact scheduled cycle
    EXPECT_EQ(marks[0].a, 130u);    // target register
    EXPECT_EQ(marks[0].b, 3u);      // bit
    std::remove(path.c_str());
}

/** Commit records carry the committing PC and raw instruction word. */
TEST(TraceStream, CommitRecordsMatchInstructionCount)
{
    const Workload workload = makeSha(WorkloadScale::kTest);
    const std::string path = tempPath("commits.fxtr");
    u64 instructions = 0;
    {
        TraceStreamWriter writer(path);
        const SimOutcome out =
            SimRequest(fabricConfig(MonitorKind::kNone))
                .workload(workload)
                .traceStream(&writer)
                .run();
        instructions = out.result.instructions;
        writer.finish();
    }

    TraceReader reader(path);
    ASSERT_TRUE(reader.valid()) << reader.error();
    u64 commits = 0;
    TraceRecord r;
    while (reader.next(&r)) {
        if (r.type == TraceRecordType::kCommit)
            ++commits;
    }
    EXPECT_EQ(commits, instructions);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace flexcore
