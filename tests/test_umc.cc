/** @file UMC monitor unit tests (functional semantics). */

#include "monitors/umc.h"

#include <gtest/gtest.h>

#include "extensions/registry.h"

namespace flexcore {
namespace {

CommitPacket
mem(Op op, Addr addr)
{
    CommitPacket pkt;
    pkt.di.op = op;
    pkt.di.type = classOf(op);
    pkt.di.valid = true;
    pkt.opcode = static_cast<u8>(pkt.di.type);
    pkt.addr = addr;
    return pkt;
}

CommitPacket
cpop(CpopFn fn, Addr addr, u32 rs1_value = 0)
{
    CommitPacket pkt;
    pkt.di.op = Op::kCpop1;
    pkt.di.type = kTypeCpop1;
    pkt.di.cpop_fn = fn;
    pkt.di.valid = true;
    pkt.opcode = kTypeCpop1;
    pkt.addr = addr;
    pkt.res = rs1_value;
    return pkt;
}

TEST(Umc, StoreInitializesLoadPasses)
{
    UmcMonitor umc;
    MonitorResult r;
    umc.process(mem(Op::kSt, 0x2000), &r);
    EXPECT_FALSE(r.trap);
    ASSERT_EQ(r.num_ops, 1u);
    EXPECT_TRUE(r.ops[0].is_write);

    MonitorResult r2;
    umc.process(mem(Op::kLd, 0x2000), &r2);
    EXPECT_FALSE(r2.trap);
    ASSERT_EQ(r2.num_ops, 1u);
    EXPECT_FALSE(r2.ops[0].is_write);
}

TEST(Umc, UninitializedLoadTraps)
{
    UmcMonitor umc;
    MonitorResult r;
    umc.process(mem(Op::kLd, 0x3000), &r);
    EXPECT_TRUE(r.trap);
    EXPECT_STREQ(r.trap_reason, "uninitialized memory read");
}

TEST(Umc, SubWordAccessesShareWordTag)
{
    UmcMonitor umc;
    MonitorResult r;
    umc.process(mem(Op::kStb, 0x2001), &r);
    MonitorResult r2;
    umc.process(mem(Op::kLduh, 0x2002), &r2);   // same word
    EXPECT_FALSE(r2.trap);
}

TEST(Umc, ClearMemTagModelsFree)
{
    UmcMonitor umc;
    MonitorResult ignore;
    umc.process(mem(Op::kSt, 0x2000), &ignore);
    umc.process(cpop(CpopFn::kClearMemTag, 0x2000), &ignore);
    MonitorResult r;
    umc.process(mem(Op::kLd, 0x2000), &r);
    EXPECT_TRUE(r.trap);   // use-after-free caught
}

TEST(Umc, SetMemTagMarksInitialized)
{
    UmcMonitor umc;
    MonitorResult ignore;
    umc.process(cpop(CpopFn::kSetMemTag, 0x4000), &ignore);
    MonitorResult r;
    umc.process(mem(Op::kLd, 0x4000), &r);
    EXPECT_FALSE(r.trap);
}

TEST(Umc, ReadTagReturnsState)
{
    UmcMonitor umc;
    MonitorResult ignore;
    umc.process(mem(Op::kSt, 0x2000), &ignore);
    MonitorResult r;
    umc.process(cpop(CpopFn::kReadTag, 0x2000), &r);
    EXPECT_TRUE(r.has_bfifo);
    EXPECT_EQ(r.bfifo, 1u);
    MonitorResult r2;
    umc.process(cpop(CpopFn::kReadTag, 0x9000), &r2);
    EXPECT_EQ(r2.bfifo, 0u);
}

TEST(Umc, PolicyDisablesTrap)
{
    UmcMonitor umc;
    MonitorResult ignore;
    umc.process(cpop(CpopFn::kSetPolicy, 0), &ignore);
    MonitorResult r;
    umc.process(mem(Op::kLd, 0x5000), &r);
    EXPECT_FALSE(r.trap);   // checks disabled
}

TEST(Umc, ProgramLoadMarksImageInitialized)
{
    UmcMonitor umc;
    umc.onProgramLoad(0x1000, 64);
    MonitorResult r;
    umc.process(mem(Op::kLd, 0x103c), &r);
    EXPECT_FALSE(r.trap);
    MonitorResult r2;
    umc.process(mem(Op::kLd, 0x1040), &r2);   // past the image
    EXPECT_TRUE(r2.trap);
}

TEST(Umc, SetBaseMovesMetaRegion)
{
    UmcMonitor umc;
    const Addr old_meta = umc.metaAddr(0x2000);
    MonitorResult ignore;
    umc.process(cpop(CpopFn::kSetBase, 0, 0x50000000), &ignore);
    EXPECT_EQ(umc.metaBase(), 0x50000000u);
    EXPECT_NE(umc.metaAddr(0x2000), old_meta);
}

TEST(Umc, CfgrForwardsOnlyMemAndCpop)
{
    Cfgr cfgr;
    ASSERT_TRUE(programCfgr(MonitorKind::kUmc, &cfgr));
    EXPECT_EQ(cfgr.policy(kTypeLoadWord), ForwardPolicy::kAlways);
    EXPECT_EQ(cfgr.policy(kTypeStoreByte), ForwardPolicy::kAlways);
    EXPECT_EQ(cfgr.policy(kTypeCpop1), ForwardPolicy::kAlways);
    EXPECT_EQ(cfgr.policy(kTypeAluAdd), ForwardPolicy::kIgnore);
    EXPECT_EQ(cfgr.policy(kTypeBranch), ForwardPolicy::kIgnore);
}

TEST(Umc, ResetClearsState)
{
    UmcMonitor umc;
    MonitorResult ignore;
    umc.process(mem(Op::kSt, 0x2000), &ignore);
    umc.reset();
    MonitorResult r;
    umc.process(mem(Op::kLd, 0x2000), &r);
    EXPECT_TRUE(r.trap);
}

TEST(UmcByteGranular, CatchesPartiallyInitializedWords)
{
    // The Purify-style variant: writing one byte does not initialize
    // the rest of the word.
    UmcMonitor umc(/*byte_granular=*/true);
    EXPECT_EQ(umc.tagBitsPerWord(), 4u);
    MonitorResult ignore;
    umc.process(mem(Op::kStb, 0x2001), &ignore);
    MonitorResult ok;
    umc.process(mem(Op::kLdub, 0x2001), &ok);
    EXPECT_FALSE(ok.trap);
    MonitorResult bad;
    umc.process(mem(Op::kLdub, 0x2002), &bad);   // untouched byte
    EXPECT_TRUE(bad.trap);
    MonitorResult word;
    umc.process(mem(Op::kLd, 0x2000), &word);    // whole word: 3 missing
    EXPECT_TRUE(word.trap);
}

TEST(UmcByteGranular, HalfwordTracking)
{
    UmcMonitor umc(true);
    MonitorResult ignore;
    umc.process(mem(Op::kSth, 0x2000), &ignore);  // bytes 0-1
    umc.process(mem(Op::kSth, 0x2002), &ignore);  // bytes 2-3
    MonitorResult r;
    umc.process(mem(Op::kLd, 0x2000), &r);        // fully covered now
    EXPECT_FALSE(r.trap);
}

TEST(UmcByteGranular, WordVariantMissesWhatByteVariantCatches)
{
    // Documents the precision difference between the two modes.
    UmcMonitor word_umc(false);
    UmcMonitor byte_umc(true);
    MonitorResult ignore;
    word_umc.process(mem(Op::kStb, 0x2000), &ignore);
    byte_umc.process(mem(Op::kStb, 0x2000), &ignore);
    MonitorResult word_r, byte_r;
    word_umc.process(mem(Op::kLd, 0x2000), &word_r);
    byte_umc.process(mem(Op::kLd, 0x2000), &byte_r);
    EXPECT_FALSE(word_r.trap);   // word granularity: false negative
    EXPECT_TRUE(byte_r.trap);    // byte granularity: caught
}

TEST(UmcByteGranular, AllocationMarksWholeWords)
{
    UmcMonitor umc(true);
    MonitorResult ignore;
    umc.process(cpop(CpopFn::kSetMemTag, 0x3000), &ignore);
    MonitorResult r;
    umc.process(mem(Op::kLd, 0x3000), &r);
    EXPECT_FALSE(r.trap);
}

}  // namespace
}  // namespace flexcore
