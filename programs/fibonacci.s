; Recursive Fibonacci — deliberately naive so the call tree runs much
; deeper than the 8 register windows: good for watching window
; spill/fill behavior.
;
;   ./build/tools/flexcore-run --stats programs/fibonacci.s
;   ./build/tools/flexcore-run --monitor umc programs/fibonacci.s
;
        .org 0x1000
_start: set 0x003ffff0, %sp
        mov 15, %o0
        call fib
        nop
        ta 2                    ; print fib(15) = 610
        mov 10, %o0
        ta 1
        mov 0, %o0
        ta 0
        nop

fib:    save %sp, -96, %sp
        cmp %i0, 2
        bl base                 ; fib(0)=0, fib(1)=1
        nop
        sub %i0, 1, %o0
        call fib
        nop
        mov %o0, %l0            ; fib(n-1)
        sub %i0, 2, %o0
        call fib
        nop
        add %l0, %o0, %i0
        ret
        restore
base:   ret
        restore %i0, 0, %o0     ; returns n itself (0 or 1)
