; A classic control-flow hijack: "network input" (tainted by the OS
; with m.setmtag) is copied past the end of its destination buffer,
; overwriting an adjacent function pointer; the program then calls
; through it.
;
;   ./build/tools/flexcore-run programs/overflow_attack.s
;       -> crashes with an illegal-instruction core trap (the jump
;          lands in attacker-chosen memory)
;
;   ./build/tools/flexcore-run --monitor dift programs/overflow_attack.s
;       -> DIFT tracks the taint through the copy and traps the
;          indirect jump *as the attack happens* (exit status 125)
;
        .org 0x1000
_start: set 0x003ffff0, %sp

        ; The OS taints the 4-word "network" buffer.
        set input, %l0
        m.setmtag [%l0], 1
        m.setmtag [%l0+4], 1
        m.setmtag [%l0+8], 1
        m.setmtag [%l0+12], 1

        ; Buggy memcpy: 4 words into a 2-word destination.
        set dest, %l1
        mov 0, %l2
copy:   sll %l2, 2, %o0
        ld [%l0+%o0], %o1
        st %o1, [%l1+%o0]
        add %l2, 1, %l2
        cmp %l2, 4
        bne copy
        nop

        ; Dispatch through the (now attacker-controlled) pointer.
        set fptr, %l3
        ld [%l3], %l4
        jmpl %l4, %o7
        nop
        mov 0, %o0
        ta 0
        nop

handler: retl
        nop

        .align 4
input:  .word 0x41414141, 0x41414141, 0x00044440, 0x42424242
dest:   .word 0, 0
fptr:   .word handler
