; Deliberately non-terminating: an infinite loop that keeps committing
; instructions, so it defeats every in-simulation bound short of
; max_cycles — the no-commit watchdog sees steady progress and
; fast-forward never finds an idle stretch. Exists to exercise the
; serving layer's wall-clock deadline (docs/serve.md): submitted with
; --default-deadline-ms it must come back as a typed deadline_exceeded
; error while the server keeps serving.
;
;   ./build/tools/flexcore-run --max-cycles 100000 programs/spin.s
;
        .org 0x1000
_start: set 0x003ffff0, %sp
        mov 0, %g2
spin:   add %g2, 1, %g2         ; commit forever
        ba spin
        nop
