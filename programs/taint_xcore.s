; Cross-core taint flow (docs/multicore.md): core 0 reads "network
; input" (tainted by the OS with m.setmtag), copies it into the
; coherent shared window, and publishes a flag; core 1 spins on the
; flag, loads the tainted word, and dispatches through it. The taint
; rides the shared window's tag store from core 0's monitor to core
; 1's, so DIFT traps the indirect jump on a core that never touched
; the tainted source.
;
;   ./build/tools/flexcore-run --cores 2 programs/taint_xcore.s
;       -> exits cleanly (the published word is a legal code address)
;
;   ./build/tools/flexcore-run --cores 2 --monitor dift \
;         programs/taint_xcore.s
;       -> core 1's DIFT monitor traps the jump through the
;          cross-core tainted pointer (exit status 125)
;
; Single-core runs take only the producer path and exit cleanly, so
; the program is also a --cores 1 smoke input.
;
        .org 0x1000
_start: set 0x003ffff0, %sp
        ta 3                    ; %o0 = this core's index
        cmp %o0, 0
        bne consumer
        nop

        ; ---- core 0: producer ----
        ; The OS taints the "network" word; the load propagates the
        ; taint into %o1, the store carries it into the shared window.
        set input, %l0
        m.setmtag [%l0], 1
        ld [%l0], %o1
        set 0x30000000, %l1     ; coherent shared window base
        st %o1, [%l1]           ; tainted payload first...
        mov 1, %o2
        st %o2, [%l1+4]         ; ...then the publish flag
        mov 0, %o0
        ta 0
        nop

        ; ---- core 1: consumer ----
consumer:
        set 0x30000000, %l1
wait:   ld [%l1+4], %o3         ; spin until core 0 publishes
        cmp %o3, 0
        be wait
        nop
        mov 64, %o4             ; settle: let both fabrics drain
settle: subcc %o4, 1, %o4
        bne settle
        nop
        ld [%l1], %l4           ; cross-core tainted pointer
        jmpl %l4, %o7           ; DIFT traps here; baseline just calls
        nop
        mov 0, %o0
        ta 0
        nop

handler: retl
        nop

        .align 4
input:  .word handler           ; "network input": a legal code address
