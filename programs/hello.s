; Hello world for the FlexCore simulator.
;
;   ./build/tools/flexcore-run programs/hello.s
;
        .org 0x1000
_start: set 0x003ffff0, %sp
        set msg, %l0
loop:   ldub [%l0], %o0
        tst %o0
        be done
        nop
        ta 1                    ; putchar(%o0)
        ba loop
        add %l0, 1, %l0
done:   mov 0, %o0
        ta 0                    ; exit(0)
        nop

        .align 4
msg:    .asciz "hello, flexcore!\n"
